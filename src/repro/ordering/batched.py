"""Batched ordering engine: frontier-at-a-time NumPy traversals.

The reference traversal orderings (``bfs``/``rbfs``/``rcm``, and the
BFS sweeps inside Sloan and the pseudo-peripheral finder) walk the mesh
one vertex at a time through a Python deque.  On a 50k-vertex mesh that
is ~50k interpreter iterations per sweep — one to two orders of
magnitude slower than the vectorized smoothing engine the orderings are
supposed to be "nearly free" relative to (the paper's Section 5.4 cost
model).

This module re-executes the same traversals one *frontier* at a time:

* the adjacency is compiled once per graph into a :class:`FrontierPlan`
  — a padded ``(n+1, dmax)`` neighbor matrix (sentinel row ``n``) plus
  preallocated id arrays — cached on the :class:`~repro.mesh.CSRGraph`
  instance so repeated orderings of one mesh share it;
* each BFS level expands every frontier vertex at once (one ``take``
  over the padded matrix), removes already-visited candidates with a
  boolean mask, and resolves duplicate claims with a *stamp* trick:
  writing globally-unique ascending ids through reversed fancy indexing
  makes the **first** occurrence of each vertex in the parent-major
  candidate stream win, which is exactly the claim order of the
  reference deque (earliest parent, then adjacency position);
* RCM's by-degree expansion is reproduced with one stable
  ``np.lexsort`` on (parent rank, degree) per level — stability
  supplies the reference's adjacency-position tie-break;
* when scipy is importable, plain (non-by-degree, non-observed) BFS
  sweeps take a compiled fast path through
  ``scipy.sparse.csgraph.breadth_first_order``, whose FIFO/CSR-order
  traversal is claim-for-claim identical to the reference deque.  The
  dependency is optional — the frontier loop produces the same
  permutation without it, just a few times slower.

Every function here returns permutations **identical** to its reference
counterpart (``tests/ordering/test_order_engines.py`` pins this
element-wise across domains and seeds); the speedup on the 50k unit
square is gated by ``benchmarks/test_ordering_speedup.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..mesh import TriMesh
from ..mesh.csr import CSRGraph
from .base import register_batched_ordering

__all__ = [
    "FrontierPlan",
    "frontier_plan",
    "frontier_bfs",
    "frontier_component",
    "frontier_distances",
    "frontier_pseudo_peripheral",
    "batched_bfs_ordering",
    "batched_reverse_bfs_ordering",
    "batched_rcm_ordering",
    "release_plan_caches",
]


@dataclass
class FrontierPlan:
    """Precompiled, quality-independent traversal structures of a graph.

    Built once per :class:`~repro.mesh.CSRGraph` by
    :func:`frontier_plan` and cached on the graph instance, so every
    batched ordering (and every repeat of one) shares the compilation
    cost.  All arrays are int64:

    ``padded``
        ``(n+1, dmax)`` neighbor matrix; row ``v`` holds the neighbors
        of ``v`` in adjacency (ascending-index) order, right-padded
        with the sentinel ``n``.  Row ``n`` is all-sentinel, so chained
        ``take`` lookups never need bounds checks.
    ``rows_r`` / ``cols_r``
        CSR expansion coordinates: entry ``k`` of ``adjncy`` lives at
        ``padded[rows_r[k], cols_r[k]]``.
    ``asc`` / ``desc``
        Preallocated ascending/descending unique-id pools for the
        first-occurrence stamp dedup (sized so a full traversal never
        reuses an id).
    ``degrees``
        Vertex degrees with a trailing 0 for the sentinel row.
    """

    n: int
    m: int
    dmax: int
    padded: np.ndarray
    rows_r: np.ndarray
    cols_r: np.ndarray
    asc: np.ndarray
    desc: np.ndarray
    degrees: np.ndarray
    _reverse_index: np.ndarray | None = field(default=None, repr=False)
    _reverse_cols: np.ndarray | None = field(default=None, repr=False)
    _csgraph: object = field(default=False, repr=False)

    def csgraph(self):
        """The graph as a ``scipy.sparse.csr_matrix`` (int32 indices),
        or ``None`` when scipy is unavailable.  Built lazily, cached.

        scipy's compiled ``csgraph.breadth_first_order`` pops a FIFO
        queue and pushes neighbors in CSR index order — the exact claim
        order of the reference deque — so plain BFS sweeps can skip the
        per-level NumPy loop entirely.  The dependency is optional: the
        frontier loop below produces identical output without it.
        """
        if self._csgraph is False:
            try:
                from scipy.sparse import csr_matrix
            except ImportError:
                self._csgraph = None
            else:
                adjncy = self.padded[self.rows_r, self.cols_r]
                self._csgraph = csr_matrix(
                    (
                        np.ones(self.m, dtype=np.uint8),
                        adjncy.astype(np.int32),
                        np.concatenate(
                            ([0], np.cumsum(self.degrees[: self.n]))
                        ).astype(np.int32),
                    ),
                    shape=(self.n, self.n),
                )
        return self._csgraph

    def reverse_index(self) -> np.ndarray:
        """CSR index of each edge's mate: entry ``k`` of ``adjncy`` is
        the directed edge ``(rows_r[k], adjncy[k])``; ``reverse_index()[k]``
        is the CSR position of ``(adjncy[k], rows_r[k])``.  Exists
        because neighbor lists are sorted ascending, so
        ``lexsort((rows_r, adjncy))`` enumerates every mate in CSR
        order.  Built lazily, cached.
        """
        if self._reverse_index is None:
            adjncy = self.padded[self.rows_r, self.cols_r]
            self._reverse_index = np.lexsort((self.rows_r, adjncy))
        return self._reverse_index

    def reverse_cols(self) -> np.ndarray:
        """``(n, dmax)`` matrix of reverse-edge columns (built lazily).

        Entry ``[v, j]`` is the position of ``v`` inside the adjacency
        row of its ``j``-th neighbor — i.e. for the directed edge
        ``(v, w)`` at ``padded[v, j]``, the column of the mate edge
        ``(w, v)`` in row ``w``.
        """
        if self._reverse_cols is None:
            xadj = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(self.degrees[: self.n], out=xadj[1:])
            adjncy = self.padded[self.rows_r, self.cols_r]
            revcol = self.reverse_index() - xadj.take(adjncy)
            rc = np.zeros((self.n, max(self.dmax, 1)), dtype=np.int64)
            rc[self.rows_r, self.cols_r] = revcol
            self._reverse_cols = rc[:, : self.dmax]
        return self._reverse_cols


def frontier_plan(graph: CSRGraph) -> FrontierPlan:
    """The (cached) :class:`FrontierPlan` of a graph."""
    plan = getattr(graph, "_frontier_plan", None)
    if plan is not None:
        return plan
    n = graph.num_vertices
    deg = graph.degrees()
    dmax = int(deg.max()) if n else 0
    m = graph.adjncy.size
    padded = np.full((n + 1, dmax), n, dtype=np.int64)
    rows_r = np.repeat(np.arange(n, dtype=np.int64), deg)
    cols_r = np.arange(m, dtype=np.int64) - np.repeat(graph.xadj[:-1], deg)
    if dmax:
        padded[rows_r, cols_r] = graph.adjncy
    # A full traversal streams each directed edge at most once past the
    # unvisited prefilter; the +n+dmax slack covers restarts and the
    # final short level.
    pool = m + n + dmax + 1
    asc = np.arange(pool, dtype=np.int64)
    plan = FrontierPlan(
        n=n,
        m=m,
        dmax=dmax,
        padded=padded,
        rows_r=rows_r,
        cols_r=cols_r,
        asc=asc,
        desc=np.ascontiguousarray(asc[::-1]),
        degrees=np.append(deg, 0).astype(np.int64),
    )
    object.__setattr__(graph, "_frontier_plan", plan)
    return plan


def release_plan_caches(graph: CSRGraph) -> None:
    """Drop the memoized ordering plans pinned on ``graph``.

    A warm :class:`FrontierPlan` plus the RDR quality plan
    (``repro.core.rdr``) hold several hundred MiB of ``n``-by-``dmax``
    arrays at million-vertex scale, and they stay referenced for the
    graph's lifetime — the right trade for repeated orderings on one
    mesh (``compare_orderings``, warm lab workers), pure overhead for a
    one-shot summary pipeline whose peak RSS they would otherwise ride
    through.  The next ordering call on the graph simply rebuilds them.
    """
    for attr in ("_frontier_plan", "_rdr_quality_plan"):
        if getattr(graph, attr, None) is not None:
            object.__setattr__(graph, attr, None)


def _scratch(plan: FrontierPlan) -> tuple[np.ndarray, np.ndarray]:
    """Per-traversal scratch (bool mask, id gather) sized for the widest
    possible candidate stream, so levels run allocation-free."""
    cap = (plan.n + 1) * max(plan.dmax, 1)
    return np.empty(cap, dtype=bool), np.empty(cap, dtype=np.int64)


def _expand_level(plan, frontier, unvis, stamp, base, scratch, *, by_degree):
    """One BFS level: expand ``frontier``, claim fresh vertices.

    Returns ``(fresh, new_base)`` where ``fresh`` is in the reference
    claim order: earliest parent first, adjacency position within a
    parent (or stable by-degree within a parent for RCM).
    """
    ubuf, sbuf = scratch
    cand = plan.padded.take(frontier, axis=0).ravel()
    keep_unvis = unvis.take(cand, out=ubuf[: cand.size])
    cu = cand.compress(keep_unvis)
    k = cu.size
    if k == 0:
        return cu, base
    if by_degree:
        # Unvisited stream positions, grabbed before ``keep`` recycles
        # the front of the mask buffer.
        upos = np.flatnonzero(keep_unvis)
    # Stamp dedup: write descending ids through the *reversed* stream so
    # the first occurrence of each vertex holds its own ascending id.
    top = plan.asc.size - 1
    stamp[cu[::-1]] = plan.desc[top - base - k + 1 : top - base + 1]
    st = stamp.take(cu, out=sbuf[:k])
    keep = np.equal(st, plan.asc[base : base + k], out=ubuf[:k])
    fresh = cu.compress(keep)
    if by_degree and fresh.size > 1:
        # Parent rank of each kept candidate (stream position // dmax);
        # the stable lexsort reproduces the reference tie-breaking:
        # parent order, then degree, then adjacency position.
        parent = upos.compress(keep) // plan.dmax
        fresh = fresh[np.lexsort((plan.degrees.take(fresh), parent))]
    unvis[fresh] = False
    return fresh, base + k


def frontier_bfs(
    plan: FrontierPlan, start: int, *, by_degree: bool = False
) -> np.ndarray:
    """Whole-graph BFS visit order, restarting at the lowest unvisited
    vertex — element-identical to ``traversals._bfs_order``."""
    n = plan.n
    if not by_degree and not obs.is_enabled():
        graph = plan.csgraph()
        if graph is not None:
            from scipy.sparse.csgraph import breadth_first_order

            order = np.empty(n, dtype=np.int64)
            unvis = np.ones(n, dtype=bool)
            pos, s = 0, start
            while pos < n:
                comp = breadth_first_order(
                    graph, s, directed=True, return_predecessors=False
                )
                order[pos : pos + comp.size] = comp
                pos += comp.size
                if pos < n:
                    unvis[comp] = False
                    s = int(np.argmax(unvis))
            return order
    unvis = np.ones(n + 1, dtype=bool)
    unvis[n] = False
    stamp = np.empty(n + 1, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    scratch = _scratch(plan)
    pos = 0
    base = 0
    scan = 0
    widths: list[int] | None = [] if obs.is_enabled() else None
    s = start
    while True:
        unvis[s] = False
        order[pos] = s
        lo = pos
        pos += 1
        while lo < pos:
            fresh, base = _expand_level(
                plan, order[lo:pos], unvis, stamp, base, scratch,
                by_degree=by_degree,
            )
            if widths is not None and fresh.size:
                widths.append(fresh.size)
            lo = pos
            order[pos : pos + fresh.size] = fresh
            pos += fresh.size
        if pos == n:
            break
        while not unvis[scan]:
            scan += 1
        s = scan
    if widths:
        obs.observe("ordering.frontier_width", np.asarray(widths))
    return order


def _device_backend(backend):
    """Map a backend name/instance to a device handle (``None`` = run
    the tuned numpy frontier loop, including the fallback case)."""
    if backend is None or backend == "numpy":
        return None
    if isinstance(backend, str):
        from ..backend import get_backend

        backend = get_backend(backend)
    return None if backend.name == "numpy" else backend


def _frontier_bfs_xp(
    plan: FrontierPlan, backend, start: int, *, by_degree: bool = False
) -> np.ndarray:
    """Device rendition of :func:`frontier_bfs` (:mod:`repro.backend`).

    The stamp trick's reversed fancy-index write is not deterministic
    on parallel scatter backends, so first-occurrence dedup is done
    with an explicit ``scatter_min`` of ascending stream ids instead
    (the minimum id *is* the earliest occurrence), and RCM's lexsort
    becomes two stable argsorts (radix composition: degree, then
    parent).  Claim order — and hence the permutation — is identical
    to the numpy path, pinned element-wise by the differential suite.
    """
    xb = backend
    n = plan.n
    dmax = max(plan.dmax, 1)
    cache = getattr(plan, "_device_arrays", None)
    if cache is None:
        cache = {}
        plan._device_arrays = cache
    if xb.name not in cache:
        cache[xb.name] = (xb.asarray(plan.padded), xb.asarray(plan.degrees))
    padded, degrees = cache[xb.name]
    unfilled = n * dmax + 2  # exceeds every per-level stream id
    unvis = xb.full(n + 1, True, xb.bool_)
    unvis[n] = False
    stamp = xb.full(n + 1, unfilled, xb.int64)
    order = xb.zeros(n, xb.int64)
    widths: list[int] | None = [] if obs.is_enabled() else None
    pos = 0
    s = int(start)
    while True:
        order[pos] = s
        unvis[s] = False
        lo = pos
        pos += 1
        while lo < pos:
            frontier = order[lo:pos]
            lo = pos
            cand = padded[frontier].reshape(-1)
            keep_unvis = unvis[cand]
            cu = cand[keep_unvis]
            k = int(cu.shape[0])
            if k == 0:
                continue
            ids = xb.arange(k)
            stamp[cu] = unfilled
            xb.scatter_min(stamp, cu, ids)
            keep = stamp[cu] == ids
            fresh = cu[keep]
            if by_degree and int(fresh.shape[0]) > 1:
                upos = xb.flatnonzero(keep_unvis)
                parent = upos[keep] // dmax
                o1 = xb.argsort(degrees[fresh], stable=True)
                o2 = xb.argsort(parent[o1], stable=True)
                fresh = fresh[o1[o2]]
            unvis[fresh] = False
            fk = int(fresh.shape[0])
            if widths is not None and fk:
                widths.append(fk)
            order[pos : pos + fk] = fresh
            pos += fk
        if pos == n:
            break
        s = int(xb.to_numpy(xb.flatnonzero(unvis[:n])[:1])[0])
    if widths:
        obs.observe("ordering.frontier_width", np.asarray(widths))
    xb.synchronize()
    return xb.to_numpy(order)


def frontier_component(
    plan: FrontierPlan, start: int
) -> tuple[np.ndarray, int]:
    """BFS visit order of ``start``'s component and its level count."""
    n = plan.n
    graph = plan.csgraph()
    if graph is not None:
        from scipy.sparse.csgraph import breadth_first_order

        comp, pred = breadth_first_order(
            graph, start, directed=True, return_predecessors=True
        )
        # Eccentricity = depth of the last-claimed vertex, read off the
        # predecessor chain (the start's predecessor is the <0 sentinel).
        v, nlev = int(comp[-1]), 1
        while pred[v] >= 0:
            v = int(pred[v])
            nlev += 1
        return comp.astype(np.int64), nlev
    unvis = np.ones(n + 1, dtype=bool)
    unvis[n] = False
    unvis[start] = False
    stamp = np.empty(n + 1, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    scratch = _scratch(plan)
    order[0] = start
    lo, pos, base, nlev = 0, 1, 0, 1
    while lo < pos:
        fresh, base = _expand_level(
            plan, order[lo:pos], unvis, stamp, base, scratch, by_degree=False
        )
        if fresh.size:
            nlev += 1
        lo = pos
        order[pos : pos + fresh.size] = fresh
        pos += fresh.size
    return order[:pos], nlev


def frontier_distances(plan: FrontierPlan, start: int) -> np.ndarray:
    """BFS distances from ``start`` (-1 outside its component) —
    element-identical to ``sloan._bfs_distance``."""
    n = plan.n
    dist = np.full(n + 1, -1, dtype=np.int64)
    unvis = np.ones(n + 1, dtype=bool)
    unvis[n] = False
    unvis[start] = False
    dist[start] = 0
    stamp = np.empty(n + 1, dtype=np.int64)
    frontier = np.array([start], dtype=np.int64)
    scratch = _scratch(plan)
    base, level = 0, 0
    while frontier.size:
        level += 1
        frontier, base = _expand_level(
            plan, frontier, unvis, stamp, base, scratch, by_degree=False
        )
        dist[frontier] = level
    return dist[:n]


def frontier_pseudo_peripheral(plan: FrontierPlan, start: int) -> int:
    """George-Liu pseudo-peripheral sweep — same vertex as
    ``traversals._pseudo_peripheral`` (its BFS pops match the frontier
    claim order, so the "farthest" vertex is the last one claimed)."""
    current = start
    last_ecc = -1
    for _ in range(8):
        comp, nlev = frontier_component(plan, current)
        ecc = nlev - 1
        if ecc <= last_ecc:
            break
        last_ecc = ecc
        current = int(comp[-1])
    return current


@register_batched_ordering("bfs")
def batched_bfs_ordering(
    mesh: TriMesh, *, seed: int = 0, qualities=None, backend=None
) -> np.ndarray:
    """Frontier-at-a-time BFS; identical to the reference ``bfs``."""
    n = mesh.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    plan = frontier_plan(mesh.adjacency)
    xb = _device_backend(backend)
    if xb is not None:
        return _frontier_bfs_xp(plan, xb, int(seed) % n)
    return frontier_bfs(plan, int(seed) % n)


@register_batched_ordering("rbfs")
def batched_reverse_bfs_ordering(
    mesh: TriMesh, *, seed: int = 0, qualities=None, backend=None
) -> np.ndarray:
    """Frontier BFS reversed; identical to the reference ``rbfs``."""
    return batched_bfs_ordering(
        mesh, seed=seed, qualities=qualities, backend=backend
    )[::-1].copy()


@register_batched_ordering("rcm")
def batched_rcm_ordering(
    mesh: TriMesh, *, seed: int = 0, qualities=None, backend=None
) -> np.ndarray:
    """Frontier-at-a-time RCM; identical to the reference ``rcm``.

    The George-Liu pseudo-peripheral start sweep stays on host (it is a
    handful of short component BFSes); only the full by-degree sweep
    runs on the configured backend.
    """
    n = mesh.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    plan = frontier_plan(mesh.adjacency)
    start = frontier_pseudo_peripheral(plan, int(seed) % n)
    xb = _device_backend(backend)
    if xb is not None:
        return _frontier_bfs_xp(plan, xb, start, by_degree=True)[::-1].copy()
    return frontier_bfs(plan, start, by_degree=True)[::-1].copy()
