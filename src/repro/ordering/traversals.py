"""Graph-traversal orderings: ORI, random, BFS, reverse-BFS, DFS, RCM.

These are the baselines the paper compares against:

* **ORI** — the mesh's native order (identity permutation), standing in
  for Triangle's divide-and-conquer output order (Figure 1b).
* **random** — the worst case (Figure 1a).
* **BFS** — breadth-first search, the Strout & Hovland (2004) reordering
  the paper treats as the state of the art (Figure 1c).
* **reverse BFS** — Munson & Hovland's FeasNewt variant: breadth-first
  order, reversed.
* **DFS** — depth-first search (Figure 4a's poorly-performing trace).
* **RCM** — reverse Cuthill-McKee: BFS from a pseudo-peripheral vertex
  with neighbor lists expanded in increasing-degree order, reversed; the
  classic bandwidth-reduction ordering, included as an extra baseline.

All traversals handle disconnected meshes by restarting from the lowest
unvisited vertex, and all return ``order`` with ``order[new] = old``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..mesh import TriMesh
from .base import register_ordering

__all__ = [
    "ori_ordering",
    "random_ordering",
    "bfs_ordering",
    "reverse_bfs_ordering",
    "dfs_ordering",
    "rcm_ordering",
]


def _restart_seeds(n: int, start: int) -> list[int]:
    """``[start, 0, 1, ..., start-1, start+1, ..., n-1]`` without the
    O(n) Python list comprehension (built vectorized, iterated as a
    list so per-seed visited checks stay cheap)."""
    seeds = np.empty(n, dtype=np.int64)
    seeds[0] = start
    seeds[1 : start + 1] = np.arange(start)
    seeds[start + 1 :] = np.arange(start + 1, n)
    return seeds.tolist()


@register_ordering("ori")
def ori_ordering(mesh: TriMesh, *, seed: int = 0, qualities=None) -> np.ndarray:
    """The identity permutation: keep the mesh generator's native order."""
    return np.arange(mesh.num_vertices, dtype=np.int64)


@register_ordering("random")
def random_ordering(mesh: TriMesh, *, seed: int = 0, qualities=None) -> np.ndarray:
    """A uniformly random permutation (the paper's worst baseline)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(mesh.num_vertices).astype(np.int64)


def _bfs_order(
    xadj: np.ndarray,
    adjncy: np.ndarray,
    n: int,
    start: int,
    *,
    by_degree: bool = False,
) -> np.ndarray:
    """Plain BFS visit order over all components, seeded at ``start``."""
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    degrees = np.diff(xadj) if by_degree else None
    pos = 0
    seeds = _restart_seeds(n, start)
    q: deque[int] = deque()
    for s in seeds:
        if visited[s]:
            continue
        visited[s] = True
        q.append(s)
        while q:
            v = q.popleft()
            order[pos] = v
            pos += 1
            nbrs = adjncy[xadj[v] : xadj[v + 1]]
            fresh = nbrs[~visited[nbrs]]
            if fresh.size:
                if by_degree:
                    fresh = fresh[np.argsort(degrees[fresh], kind="stable")]
                visited[fresh] = True
                q.extend(fresh.tolist())
    return order


@register_ordering("bfs")
def bfs_ordering(mesh: TriMesh, *, seed: int = 0, qualities=None) -> np.ndarray:
    """Breadth-first ordering (Strout & Hovland). ``seed`` picks the root."""
    g = mesh.adjacency
    n = mesh.num_vertices
    start = int(seed) % n if n else 0
    return _bfs_order(g.xadj, g.adjncy, n, start)


@register_ordering("rbfs")
def reverse_bfs_ordering(
    mesh: TriMesh, *, seed: int = 0, qualities=None
) -> np.ndarray:
    """BFS order reversed (Munson & Hovland's FeasNewt choice)."""
    return bfs_ordering(mesh, seed=seed, qualities=qualities)[::-1].copy()


@register_ordering("dfs")
def dfs_ordering(mesh: TriMesh, *, seed: int = 0, qualities=None) -> np.ndarray:
    """Iterative depth-first (preorder) ordering."""
    g = mesh.adjacency
    n = mesh.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    start = int(seed) % n
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    seeds = _restart_seeds(n, start)
    for s in seeds:
        if visited[s]:
            continue
        stack = [s]
        while stack:
            v = stack.pop()
            if visited[v]:
                continue
            visited[v] = True
            order[pos] = v
            pos += 1
            nbrs = g.adjncy[g.xadj[v] : g.xadj[v + 1]]
            # Reversed so the smallest-index neighbor is popped first,
            # matching the recursive definition.
            stack.extend(nbrs[~visited[nbrs]][::-1].tolist())
    return order


def _pseudo_peripheral(xadj: np.ndarray, adjncy: np.ndarray, n: int, start: int) -> int:
    """George-Liu style pseudo-peripheral vertex finder (few BFS sweeps)."""
    current = start
    last_ecc = -1
    for _ in range(8):
        dist = np.full(n, -1, dtype=np.int64)
        dist[current] = 0
        q = deque([current])
        far = current
        while q:
            v = q.popleft()
            far = v
            for w in adjncy[xadj[v] : xadj[v + 1]]:
                if dist[w] == -1:
                    dist[w] = dist[v] + 1
                    q.append(int(w))
        ecc = int(dist[far])
        if ecc <= last_ecc:
            break
        last_ecc = ecc
        current = int(far)
    return current


@register_ordering("rcm")
def rcm_ordering(mesh: TriMesh, *, seed: int = 0, qualities=None) -> np.ndarray:
    """Reverse Cuthill-McKee from a pseudo-peripheral root."""
    g = mesh.adjacency
    n = mesh.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    start = _pseudo_peripheral(g.xadj, g.adjncy, n, int(seed) % n)
    cm = _bfs_order(g.xadj, g.adjncy, n, start, by_degree=True)
    return cm[::-1].copy()
