"""Ordering registry and permutation utilities.

An *ordering* is a function that maps a mesh to a permutation ``order``
of its vertices, with the convention used across the library:

    ``order[k]`` is the OLD index of the vertex stored at NEW position ``k``.

Equivalently, ``mesh.permute(order)`` gathers old data into the new
layout. The inverse permutation (``new_of_old``) is obtained with
:func:`invert_permutation`.

Orderings register themselves under a short name (``"ori"``, ``"bfs"``,
``"rdr"``, ...) via :func:`register_ordering`; experiments look them up
by name so benchmark parameterisations stay declarative.

Each name may additionally have a *batched* implementation — a NumPy
frontier/plan-based reimplementation registered via
:func:`register_batched_ordering` that returns **exactly the same
permutation** as the reference function (the differential suite in
``tests/ordering/test_order_engines.py`` pins this element-wise).  The
``order_engine`` axis selects between them: ``"reference"`` always uses
the registry above; ``"batched"`` prefers the batched implementation
and silently falls back to the reference one for names that have no
batched variant (their reference form is already array-based), so every
registered name works under either engine.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..config import UnknownNameError
from ..mesh import TriMesh

__all__ = [
    "OrderingFn",
    "ORDERINGS",
    "BATCHED_ORDERINGS",
    "ORDER_ENGINES",
    "register_ordering",
    "register_batched_ordering",
    "get_ordering",
    "apply_ordering",
    "invert_permutation",
    "check_permutation",
]

#: Valid values of the ``order_engine`` axis.
ORDER_ENGINES = ("reference", "batched")


class OrderingFn(Protocol):
    """Signature of an ordering function.

    ``qualities`` (per-vertex, higher is better) is supplied by callers
    that already computed it; quality-aware orderings recompute it
    otherwise. ``seed`` controls any randomised tie-breaking.
    """

    def __call__(
        self,
        mesh: TriMesh,
        *,
        seed: int = 0,
        qualities: np.ndarray | None = None,
    ) -> np.ndarray: ...


ORDERINGS: dict[str, OrderingFn] = {}

#: Batched (vectorized, exact-equivalent) implementations, keyed by the
#: same names as :data:`ORDERINGS`.  Sparse by design: names without an
#: entry fall back to the reference function under
#: ``order_engine="batched"``.
BATCHED_ORDERINGS: dict[str, OrderingFn] = {}


def register_ordering(name: str) -> Callable[[OrderingFn], OrderingFn]:
    """Class/function decorator adding an ordering to the registry."""

    def deco(fn: OrderingFn) -> OrderingFn:
        if name in ORDERINGS:
            raise ValueError(f"ordering {name!r} already registered")
        ORDERINGS[name] = fn
        return fn

    return deco


def register_batched_ordering(name: str) -> Callable[[OrderingFn], OrderingFn]:
    """Decorator registering the batched implementation of ``name``.

    The implementation must return exactly the permutation the reference
    registration returns for every input (same mesh, seed, qualities).
    """

    def deco(fn: OrderingFn) -> OrderingFn:
        if name in BATCHED_ORDERINGS:
            raise ValueError(f"batched ordering {name!r} already registered")
        BATCHED_ORDERINGS[name] = fn
        return fn

    return deco


def get_ordering(name: str, *, order_engine: str = "reference") -> OrderingFn:
    """Look up a registered ordering by name.

    ``order_engine="batched"`` returns the batched implementation when
    one is registered and the reference function otherwise (both produce
    the same permutation).  Unknown ordering names raise ``KeyError``
    listing the choices; unknown engine names raise
    :class:`repro.config.UnknownNameError`.
    """
    if order_engine not in ORDER_ENGINES:
        raise UnknownNameError("order engine", order_engine, ORDER_ENGINES)
    try:
        fn = ORDERINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown ordering {name!r}; available: {sorted(ORDERINGS)}"
        ) from None
    if order_engine == "batched":
        return BATCHED_ORDERINGS.get(name, fn)
    return fn


def apply_ordering(
    mesh: TriMesh,
    name: str,
    *,
    seed: int = 0,
    qualities: np.ndarray | None = None,
    order_engine: str = "reference",
    backend: str = "numpy",
) -> tuple[TriMesh, np.ndarray]:
    """Compute an ordering and return ``(permuted_mesh, order)``.

    ``backend`` names the array namespace (:mod:`repro.backend`) and is
    forwarded to ordering implementations that accept it (the batched
    frontier traversals); the rest run their usual numpy code —
    permutations are backend-invariant either way.
    """
    fn = get_ordering(name, order_engine=order_engine)
    kwargs = {}
    if backend != "numpy" and _accepts_backend(fn):
        kwargs["backend"] = backend
    order = fn(mesh, seed=seed, qualities=qualities, **kwargs)
    return mesh.permute(order), order


def _accepts_backend(fn) -> bool:
    """Whether an ordering function takes the ``backend`` keyword."""
    cached = getattr(fn, "_accepts_backend", None)
    if cached is None:
        import inspect

        try:
            cached = "backend" in inspect.signature(fn).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            cached = False
        try:
            fn._accepts_backend = cached
        except AttributeError:  # pragma: no cover - slotted callables
            pass
    return cached


def invert_permutation(order: np.ndarray) -> np.ndarray:
    """``inv[old] = new`` for a permutation ``order[new] = old``."""
    order = np.asarray(order, dtype=np.int64)
    inv = np.empty_like(order)
    inv[order] = np.arange(order.size, dtype=np.int64)
    return inv


def check_permutation(order: np.ndarray, n: int) -> np.ndarray:
    """Validate and return ``order`` as an int64 permutation of ``0..n-1``."""
    order = np.asarray(order, dtype=np.int64)
    if order.shape != (n,):
        raise ValueError(f"expected shape ({n},), got {order.shape}")
    seen = np.zeros(n, dtype=bool)
    if order.size and (order.min() < 0 or order.max() >= n):
        raise ValueError("permutation entries out of range")
    seen[order] = True
    if not seen.all():
        raise ValueError("not a permutation: some indices missing")
    return order
