"""Ordering registry and permutation utilities.

An *ordering* is a function that maps a mesh to a permutation ``order``
of its vertices, with the convention used across the library:

    ``order[k]`` is the OLD index of the vertex stored at NEW position ``k``.

Equivalently, ``mesh.permute(order)`` gathers old data into the new
layout. The inverse permutation (``new_of_old``) is obtained with
:func:`invert_permutation`.

Orderings register themselves under a short name (``"ori"``, ``"bfs"``,
``"rdr"``, ...) via :func:`register_ordering`; experiments look them up
by name so benchmark parameterisations stay declarative.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..mesh import TriMesh

__all__ = [
    "OrderingFn",
    "ORDERINGS",
    "register_ordering",
    "get_ordering",
    "apply_ordering",
    "invert_permutation",
    "check_permutation",
]


class OrderingFn(Protocol):
    """Signature of an ordering function.

    ``qualities`` (per-vertex, higher is better) is supplied by callers
    that already computed it; quality-aware orderings recompute it
    otherwise. ``seed`` controls any randomised tie-breaking.
    """

    def __call__(
        self,
        mesh: TriMesh,
        *,
        seed: int = 0,
        qualities: np.ndarray | None = None,
    ) -> np.ndarray: ...


ORDERINGS: dict[str, OrderingFn] = {}


def register_ordering(name: str) -> Callable[[OrderingFn], OrderingFn]:
    """Class/function decorator adding an ordering to the registry."""

    def deco(fn: OrderingFn) -> OrderingFn:
        if name in ORDERINGS:
            raise ValueError(f"ordering {name!r} already registered")
        ORDERINGS[name] = fn
        return fn

    return deco


def get_ordering(name: str) -> OrderingFn:
    """Look up a registered ordering by name (KeyError with choices otherwise)."""
    try:
        return ORDERINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown ordering {name!r}; available: {sorted(ORDERINGS)}"
        ) from None


def apply_ordering(
    mesh: TriMesh,
    name: str,
    *,
    seed: int = 0,
    qualities: np.ndarray | None = None,
) -> tuple[TriMesh, np.ndarray]:
    """Compute an ordering and return ``(permuted_mesh, order)``."""
    order = get_ordering(name)(mesh, seed=seed, qualities=qualities)
    return mesh.permute(order), order


def invert_permutation(order: np.ndarray) -> np.ndarray:
    """``inv[old] = new`` for a permutation ``order[new] = old``."""
    order = np.asarray(order, dtype=np.int64)
    inv = np.empty_like(order)
    inv[order] = np.arange(order.size, dtype=np.int64)
    return inv


def check_permutation(order: np.ndarray, n: int) -> np.ndarray:
    """Validate and return ``order`` as an int64 permutation of ``0..n-1``."""
    order = np.asarray(order, dtype=np.int64)
    if order.shape != (n,):
        raise ValueError(f"expected shape ({n},), got {order.shape}")
    seen = np.zeros(n, dtype=bool)
    if order.size and (order.min() < 0 or order.max() >= n):
        raise ValueError("permutation entries out of range")
    seen[order] = True
    if not seen.all():
        raise ValueError("not a permutation: some indices missing")
    return order
