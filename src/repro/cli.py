"""Command-line interface: ``repro-lms`` / ``python -m repro``.

Subcommands:

``generate``   build one of the nine domain meshes and write Triangle files
``smooth``     smooth a mesh (optionally after a reordering) and report
``reorder``    write the reordered mesh under a named ordering
``analyze``    trace a run, break misses down per array, export the trace
``experiment`` run one of the paper's tables/figures and print it
``list``       show available domains, orderings and experiments
"""

from __future__ import annotations

import argparse
import sys

from . import bench
from .bench import format_table
from .core import measure_reordering_cost, run_ordering
from .mesh import read_triangle, write_triangle
from .meshgen import generate_domain_mesh, list_domains
from .ordering import ORDERINGS, apply_ordering
from .quality import global_quality
from .smoothing import laplacian_smooth

EXPERIMENTS = {
    "table1": lambda cfg: format_table(bench.table1_rows(cfg), title="Table 1"),
    "fig1": lambda cfg: format_table(
        bench.fig1_profiles(cfg)["rows"], title="Figure 1 (ocean)"
    ),
    "fig4": lambda cfg: "\n".join(
        [
            f"Figure 4 ({k}): coords locations = {v}"
            for k, v in bench.fig4_traces(cfg)["snippets"].items()
        ]
    ),
    "fig6": lambda cfg: "Figure 6: correlation of iteration profiles with "
    "iteration 0: "
    + ", ".join(f"{c:.2f}" for c in bench.fig6_series(cfg)["correlation_with_first"]),
    "fig8": lambda cfg: format_table(bench.fig8_rows(cfg), title="Figure 8"),
    "fig9": lambda cfg: format_table(bench.fig9_rows(cfg), title="Figure 9"),
    "table2": lambda cfg: format_table(bench.table2_rows(cfg), title="Table 2"),
    "table3": lambda cfg: format_table(bench.table3_rows(cfg), title="Table 3"),
    "fig10": lambda cfg: format_table(bench.fig10_rows(cfg), title="Figure 10"),
    "fig11": lambda cfg: format_table(bench.fig11_rows(cfg), title="Figure 11"),
    "fig12": lambda cfg: format_table(bench.fig12_rows(cfg), title="Figure 12"),
    "fig13": lambda cfg: format_table(bench.fig13_rows(cfg), title="Figure 13"),
    "sec54": lambda cfg: format_table(bench.sec54_rows(cfg), title="Section 5.4"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lms",
        description="Locality-Aware Laplacian Mesh Smoothing (ICPP 2016) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a domain mesh")
    gen.add_argument("domain", choices=list_domains())
    gen.add_argument("output", help="output stem for .node/.ele files")
    gen.add_argument("--vertices", type=int, default=1500)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--quality-structure",
        default="ramp",
        choices=["ramp", "hotspots", "uniform"],
    )

    sm = sub.add_parser("smooth", help="smooth a mesh from .node/.ele files")
    sm.add_argument("input", help="input stem (reads <stem>.node/.ele)")
    sm.add_argument("--output", help="output stem for the smoothed mesh")
    sm.add_argument("--ordering", default=None, choices=sorted(ORDERINGS))
    sm.add_argument("--max-iterations", type=int, default=50)
    sm.add_argument("--traversal", default="greedy", choices=["greedy", "storage"])
    sm.add_argument("--report-cache", action="store_true",
                    help="simulate the memory hierarchy and print miss rates")

    ro = sub.add_parser("reorder", help="reorder a mesh's vertices")
    ro.add_argument("input", help="input stem (reads <stem>.node/.ele)")
    ro.add_argument("output", help="output stem")
    ro.add_argument("--ordering", default="rdr", choices=sorted(ORDERINGS))
    ro.add_argument("--report-cost", action="store_true")

    an = sub.add_parser(
        "analyze", help="trace one smoothing iteration and break down misses"
    )
    an.add_argument("input", help="input stem (reads <stem>.node/.ele)")
    an.add_argument("--ordering", default="rdr", choices=sorted(ORDERINGS))
    an.add_argument("--iterations", type=int, default=1)
    an.add_argument("--save-trace", help="write the access trace to this .npz path")

    ex = sub.add_parser("experiment", help="run a paper table/figure")
    ex.add_argument("name", choices=sorted(EXPERIMENTS))
    ex.add_argument("--scale", type=float, default=None,
                    help="mesh-suite scale relative to the paper's sizes")
    ex.add_argument("--seed", type=int, default=0)

    sub.add_parser("list", help="list domains, orderings and experiments")
    return parser


def _cmd_generate(args) -> int:
    mesh = generate_domain_mesh(
        args.domain,
        target_vertices=args.vertices,
        seed=args.seed,
        quality_structure=args.quality_structure,
    )
    node, ele = write_triangle(mesh, args.output)
    print(
        f"{args.domain}: {mesh.num_vertices} vertices, "
        f"{mesh.num_triangles} triangles, initial quality "
        f"{global_quality(mesh):.4f}"
    )
    print(f"wrote {node} and {ele}")
    return 0


def _cmd_smooth(args) -> int:
    mesh = read_triangle(args.input)
    if args.report_cache and args.ordering:
        run = run_ordering(mesh, args.ordering, traversal=args.traversal,
                           max_iterations=args.max_iterations)
        result = run.smoothing
        st = run.cache
        print(
            f"cache (simulated): L1 {st.l1.miss_rate:.3%} "
            f"L2 {st.l2.miss_rate:.3%} L3 {st.l3.miss_rate:.3%} miss rates; "
            f"modeled time {run.modeled_seconds * 1e3:.3f} ms"
        )
        smoothed = result.mesh
    else:
        if args.ordering:
            mesh, _ = apply_ordering(mesh, args.ordering)
        result = laplacian_smooth(
            mesh, traversal=args.traversal, max_iterations=args.max_iterations
        )
        smoothed = result.mesh
    print(
        f"smoothed in {result.iterations} iterations "
        f"({'converged' if result.converged else 'iteration cap'}): "
        f"quality {result.initial_quality:.4f} -> {result.final_quality:.4f}"
    )
    if args.output:
        node, ele = write_triangle(smoothed, args.output)
        print(f"wrote {node} and {ele}")
    return 0


def _cmd_reorder(args) -> int:
    mesh = read_triangle(args.input)
    permuted, _ = apply_ordering(mesh, args.ordering)
    node, ele = write_triangle(permuted, args.output)
    print(f"reordered {mesh.num_vertices} vertices with {args.ordering!r}")
    print(f"wrote {node} and {ele}")
    if args.report_cost:
        cost = measure_reordering_cost(mesh, args.ordering)
        print(
            f"reordering cost: {cost.ordering_seconds * 1e3:.2f} ms "
            f"= {cost.iterations_equivalent:.2f} smoothing iterations"
        )
    return 0


def _cmd_analyze(args) -> int:
    from .memsim import per_array_breakdown, trace_summary

    mesh = read_triangle(args.input)
    run = run_ordering(mesh, args.ordering, fixed_iterations=args.iterations)
    summary = trace_summary(run.trace, run.layout)
    print(
        f"trace: {summary['length']} accesses over "
        f"{summary['iterations']} iteration(s), "
        f"{summary['distinct_lines']} distinct lines, "
        f"cold fraction {summary['cold_fraction']:.1%}"
    )
    rows = [b.as_row() for b in per_array_breakdown(run.trace, run.layout, run.machine)]
    print(format_table(rows, title=f"per-array breakdown ({args.ordering})"))
    prof = run.reuse_profile()
    print(
        f"reuse distance (1st iteration): q50={prof.q50} q75={prof.q75} "
        f"q90={prof.q90} max={prof.q100}"
    )
    print(f"modeled time: {run.modeled_seconds * 1e3:.3f} ms on {run.machine.name}")
    if args.save_trace:
        path = run.trace.save_npz(args.save_trace)
        print(f"wrote trace to {path}")
    return 0


def _cmd_experiment(args) -> int:
    kwargs = {"seed": args.seed}
    if args.scale is not None:
        kwargs["suite_scale"] = args.scale
        kwargs["scaling_scale"] = max(args.scale, 3 * args.scale)
    cfg = bench.BenchConfig(**kwargs)
    print(EXPERIMENTS[args.name](cfg))
    return 0


def _cmd_list() -> int:
    print("domains:    ", ", ".join(list_domains()))
    print("orderings:  ", ", ".join(sorted(ORDERINGS)))
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "smooth":
        return _cmd_smooth(args)
    if args.command == "reorder":
        return _cmd_reorder(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "list":
        return _cmd_list()
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
