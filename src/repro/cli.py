"""Command-line interface: ``repro-lms`` / ``python -m repro``.

Subcommands:

``generate``   build one of the nine domain meshes and write Triangle files
``smooth``     smooth a mesh (optionally after a reordering) and report
``reorder``    write the reordered mesh under a named ordering
``analyze``    trace a run, break misses down per array, export the trace
``parallel``   simulate a multicore smoothing run (shared-L3 sockets)
``experiment`` run one of the paper's tables/figures and print it
``lab``        durable experiment sweeps: ``init|run|serve|work|status|
               reset|export`` — including the distributed mode, where
               ``lab serve`` exposes the job store over HTTP and
               ``lab work --server URL`` drains it from any host
``list``       show available domains, orderings, experiments and engines

Engine selection is uniform across subcommands: :func:`add_engine_args`
derives one flag per :func:`repro.config.engine_axes` axis —
``--engine``/``--sim-engine``/``--mem-engine``/``--order-engine``/
``--backend`` plus ``--seed`` and ``--machine-profile`` (or the plural
comma-list forms for grid sweeps) — and :func:`run_config_from_args`
folds them into one validated :class:`repro.config.RunConfig`.
Observability flags (``--trace-out``, ``--metrics-out``) ride in the
same config.

Unknown domain/ordering/experiment/engine names exit with status 2 and
a one-line message listing the valid choices.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from . import bench, obs
from .bench import format_table
from .bench.report import save_csv
from .config import (
    DEFAULT_RUN_CONFIG,
    MACHINE_PROFILES,
    ObsConfig,
    RunConfig,
    UnknownNameError,
    engine_axes,
)
from .core import measure_reordering_cost, run_ordering
from .lab.backends import DEFAULT_LEASE_S
from .lab.http_store import StoreConnectionError
from .mesh import read_triangle, write_triangle
from .meshgen import (
    generate_domain_mesh,
    list_domains,
    perturb_interior,
    structured_rectangle,
)
from .ordering import ORDERINGS, apply_ordering
from .quality import global_quality
from .smoothing import laplacian_smooth

EXPERIMENTS = {
    "table1": lambda cfg: format_table(bench.table1_rows(cfg), title="Table 1"),
    "fig1": lambda cfg: format_table(
        bench.fig1_profiles(cfg)["rows"], title="Figure 1 (ocean)"
    ),
    "fig4": lambda cfg: "\n".join(
        [
            f"Figure 4 ({k}): coords locations = {v}"
            for k, v in bench.fig4_traces(cfg)["snippets"].items()
        ]
    ),
    "fig6": lambda cfg: "Figure 6: correlation of iteration profiles with "
    "iteration 0: "
    + ", ".join(f"{c:.2f}" for c in bench.fig6_series(cfg)["correlation_with_first"]),
    "fig8": lambda cfg: format_table(bench.fig8_rows(cfg), title="Figure 8"),
    "fig9": lambda cfg: format_table(bench.fig9_rows(cfg), title="Figure 9"),
    "table2": lambda cfg: format_table(bench.table2_rows(cfg), title="Table 2"),
    "table3": lambda cfg: format_table(bench.table3_rows(cfg), title="Table 3"),
    "fig10": lambda cfg: format_table(bench.fig10_rows(cfg), title="Figure 10"),
    "fig11": lambda cfg: format_table(bench.fig11_rows(cfg), title="Figure 11"),
    "fig12": lambda cfg: format_table(bench.fig12_rows(cfg), title="Figure 12"),
    "fig13": lambda cfg: format_table(bench.fig13_rows(cfg), title="Figure 13"),
    "sec54": lambda cfg: format_table(bench.sec54_rows(cfg), title="Section 5.4"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lms",
        description="Locality-Aware Laplacian Mesh Smoothing (ICPP 2016) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a domain mesh")
    gen.add_argument("domain", choices=list_domains())
    gen.add_argument("output", help="output stem for .node/.ele files")
    gen.add_argument("--vertices", type=int, default=1500)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--quality-structure",
        default="ramp",
        choices=["ramp", "hotspots", "uniform"],
    )

    sm = sub.add_parser("smooth", help="smooth a mesh from .node/.ele files")
    sm.add_argument("input", help="input stem (reads <stem>.node/.ele)")
    sm.add_argument("--output", help="output stem for the smoothed mesh")
    sm.add_argument("--ordering", default=None, choices=sorted(ORDERINGS))
    sm.add_argument("--max-iterations", type=int, default=50)
    sm.add_argument("--traversal", default="greedy", choices=["greedy", "storage"])
    sm.add_argument("--report-cache", action="store_true",
                    help="simulate the memory hierarchy and print miss rates")
    add_engine_args(sm)
    add_obs_args(sm)

    ro = sub.add_parser("reorder", help="reorder a mesh's vertices")
    ro.add_argument("input", help="input stem (reads <stem>.node/.ele)")
    ro.add_argument("output", help="output stem")
    ro.add_argument("--ordering", default="rdr", choices=sorted(ORDERINGS))
    ro.add_argument("--report-cost", action="store_true")
    add_engine_args(ro)

    an = sub.add_parser(
        "analyze", help="trace one smoothing iteration and break down misses"
    )
    an.add_argument("input", nargs="?", default=None,
                    help="input stem (reads <stem>.node/.ele); omit to "
                         "generate a mesh with --domain instead")
    an.add_argument("--domain", default=None,
                    choices=[*list_domains(), "unit-square"],
                    help="generate the mesh instead of reading one: a named "
                         "domain or the perturbed structured unit square")
    an.add_argument("--vertices", type=int, default=1500,
                    help="vertex budget for --domain meshes")
    an.add_argument("--ordering", default="rdr", choices=sorted(ORDERINGS))
    an.add_argument("--iterations", type=int, default=1)
    an.add_argument("--save-trace", help="write the access trace to this .npz path")
    an.add_argument("--stream-window", type=int, default=None, metavar="EVENTS",
                    help="replay the cache simulation in bounded windows of "
                         "this many events (streaming engine; identical "
                         "counts, peak memory bounded by one window)")
    add_engine_args(an)
    add_obs_args(an)

    pa = sub.add_parser(
        "parallel", help="simulate a multicore smoothing run"
    )
    pa.add_argument("input", help="input stem (reads <stem>.node/.ele)")
    pa.add_argument("--ordering", default="rdr", choices=sorted(ORDERINGS))
    pa.add_argument("--cores", type=int, default=2,
                    help="number of simulated threads")
    pa.add_argument("--iterations", type=int, default=8)
    pa.add_argument("--affinity", default="scatter",
                    choices=["compact", "scatter"])
    pa.add_argument("--stream-window", type=int, default=None, metavar="EVENTS",
                    help="replay each socket's cache simulation in bounded "
                         "windows of this many events (identical counts)")
    add_engine_args(pa)
    add_obs_args(pa)

    ex = sub.add_parser("experiment", help="run a paper table/figure")
    ex.add_argument("name", choices=sorted(EXPERIMENTS))
    ex.add_argument("--scale", type=float, default=None,
                    help="mesh-suite scale relative to the paper's sizes")
    add_engine_args(ex)

    _build_lab_parser(sub)

    sub.add_parser(
        "list", help="list domains, orderings, experiments and engines"
    )
    return parser


def _comma_list(cast):
    def parse(text: str):
        return tuple(cast(part) for part in text.split(",") if part)

    return parse


#: Singular-flag help text per engine axis; the plural comma-list form
#: derives its text generically.  New axes registered in
#: :func:`repro.config.engine_axes` get a flag automatically even
#: without an entry here.
AXIS_HELP = {
    "engine": "smoothing execution engine: scalar reference loop or the "
              "NumPy wavefront engine (same results, faster)",
    "sim_engine": "cache simulator: per-event reference replay or the "
                  "vectorized stack-distance engine (identical counts, "
                  "much faster)",
    "mem_engine": "multicore replay engine: in-process sockets or one "
                  "worker process per socket (identical counts)",
    "order_engine": "vertex-ordering engine: reference traversals or the "
                    "frontier-batched NumPy reimplementation (identical "
                    "permutations, much faster)",
    "backend": "array backend the fast engines run on (see repro.backend); "
               "cupy/torch fall back to numpy with a warning when not "
               "installed",
    "trace_mode": "where the smoother's access trace goes: materialize "
                  "(full in-memory trace), spill (stream to the chunked "
                  "on-disk format) or fused (stream windows straight into "
                  "the cache simulators with overlapped compute; identical "
                  "counts, bounded memory)",
}


def add_engine_args(parser, *, plural: bool = False) -> None:
    """Attach the unified engine/seed flags to a subcommand parser.

    One flag per :func:`repro.config.engine_axes` axis plus ``--seed``
    and ``--machine-profile``: the singular form (``--engine``/
    ``--sim-engine``/``--mem-engine``/``--order-engine``/``--backend``)
    selects one :class:`repro.config.RunConfig`; the plural comma-list
    form (``--engines``/.../``--backends``/``--seeds``) spans grid axes
    for ``lab init``.  The flag set is derived from the axis registry,
    so new engine axes surface on every subcommand automatically.
    """
    for axis, choices in engine_axes().items():
        flag = "--" + axis.replace("_", "-")
        default = getattr(DEFAULT_RUN_CONFIG, axis)
        if plural:
            parser.add_argument(
                flag + "s", type=_comma_list(str), default=(default,),
                help=f"comma list of {axis.replace('_', ' ')} values "
                     f"({','.join(choices)})",
            )
        else:
            parser.add_argument(flag, default=default, choices=list(choices),
                                help=AXIS_HELP.get(axis, ""))
    if plural:
        parser.add_argument("--seeds", type=_comma_list(int), default=(0,),
                            help="comma list of seeds")
        return
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for stochastic orderings (e.g. random)")
    parser.add_argument("--machine-profile", default=None,
                        choices=list(MACHINE_PROFILES),
                        help="calibration profile for the default machine "
                             "(default: each pipeline's historical choice; "
                             "gpu-generic models a coalescing device with "
                             "128-byte lines)")


def add_obs_args(parser) -> None:
    """Attach the observability flags (span/metrics export paths)."""
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="capture a span trace of the run and write it "
                             "as JSONL (one span per line)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="capture live metrics (counters/histograms) "
                             "and write the snapshot as JSON")


def run_config_from_args(args) -> RunConfig:
    """Fold the flags attached by :func:`add_engine_args` /
    :func:`add_obs_args` into one validated :class:`RunConfig`."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    window = getattr(args, "stream_window", None)
    if window is not None and window < 1:
        raise UnknownNameError(
            "stream window", str(window), ["None", "any int >= 1"]
        )
    return RunConfig(
        **{
            axis: getattr(args, axis, getattr(DEFAULT_RUN_CONFIG, axis))
            for axis in engine_axes()
        },
        seed=getattr(args, "seed", 0),
        machine_profile=getattr(args, "machine_profile", None),
        stream_window_events=window,
        obs=ObsConfig(
            enabled=bool(trace_out or metrics_out),
            trace_path=trace_out,
            metrics_path=metrics_out,
        ),
    ).validate()


def _build_lab_parser(sub) -> None:
    lab = sub.add_parser(
        "lab", help="durable experiment sweeps (job store + worker pool)"
    )
    lab_sub = lab.add_subparsers(dest="lab_command", required=True)

    def add_db(p):
        p.add_argument("--db", default="lab.db",
                       help="job-store SQLite file (default: lab.db)")

    def add_token(p):
        p.add_argument("--token", default=None,
                       help="shared bearer token (default: $REPRO_LAB_TOKEN)")

    ini = lab_sub.add_parser("init", help="expand a grid into pending jobs")
    add_db(ini)
    ini.add_argument("--server", default=None,
                     help="queue the grid on a running lab server "
                          "instead of --db")
    add_token(ini)
    ini.add_argument("--experiments", type=_comma_list(str),
                     default=("pipeline",),
                     help="comma list: pipeline,smooth,reorder-cost,"
                          "parallel-pipeline")
    ini.add_argument("--domains", type=_comma_list(str), default=("ocean",),
                     help="comma list of domain names (see `repro-lms list`)")
    ini.add_argument("--orderings", type=_comma_list(str),
                     default=("ori", "rdr"),
                     help="comma list of ordering names")
    ini.add_argument("--vertices", type=_comma_list(int), default=(300,),
                     help="comma list of vertex budgets")
    ini.add_argument("--cache-scales", type=_comma_list(float), default=(1.0,),
                     help="comma list of cache-size multipliers")
    ini.add_argument("--stream-windows", type=_comma_list(int), default=(),
                     metavar="E1,E2,...",
                     help="grid axis over streaming window sizes (events); "
                          "empty sweeps only the in-memory engines")
    ini.add_argument("--quality-structure", default="ramp",
                     choices=["ramp", "hotspots", "uniform"])
    add_engine_args(ini, plural=True)
    ini.add_argument("--max-iterations", type=int, default=8)
    ini.add_argument("--max-attempts", type=int, default=3)
    ini.add_argument("--force-new", action="store_true",
                     help="create a new run even if the latest has this grid")

    def add_worker_args(p):
        p.add_argument("--workers", type=int, default=1)
        p.add_argument("--timeout", type=float, default=300.0,
                       help="per-job wall-clock budget in seconds")
        p.add_argument("--retry-base", type=float, default=0.5,
                       help="base of the exponential retry backoff (seconds)")
        p.add_argument("--max-jobs", type=int, default=None,
                       help="stop each worker after this many jobs")
        p.add_argument("--obs", action="store_true",
                       help="trace every job (span tree + metrics appended "
                            "to telemetry as job_spans events)")

    run = lab_sub.add_parser("run", help="drain pending jobs with workers")
    add_db(run)
    add_worker_args(run)
    run.add_argument("--cache-dir", default=None,
                     help="artifact cache directory (default: <db>.artifacts)")
    run.add_argument("--telemetry", default=None,
                     help="telemetry JSONL path (default: <db>.telemetry.jsonl)")
    run.add_argument("--lease", type=float, default=DEFAULT_LEASE_S,
                     help="claim-lease duration in seconds; jobs of a "
                          "killed worker re-queue after this long "
                          f"(default: {DEFAULT_LEASE_S:.0f})")

    sv = lab_sub.add_parser(
        "serve", help="expose the job store over HTTP for remote workers"
    )
    add_db(sv)
    sv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default: 127.0.0.1; use 0.0.0.0 "
                         "to accept remote workers)")
    sv.add_argument("--port", type=int, default=8642,
                    help="bind port (default: 8642; 0 picks a free port)")
    add_token(sv)
    sv.add_argument("--lease", type=float, default=DEFAULT_LEASE_S,
                    help="claim-lease duration granted to workers "
                         f"(default: {DEFAULT_LEASE_S:.0f}s)")

    wk = lab_sub.add_parser(
        "work", help="drain jobs from a lab server on this host"
    )
    wk.add_argument("--server", required=True,
                    help="job-server URL (http://host:port)")
    add_token(wk)
    add_worker_args(wk)
    wk.add_argument("--cache-dir", default="lab-work.artifacts",
                    help="local artifact cache directory "
                         "(default: lab-work.artifacts)")
    wk.add_argument("--telemetry", default="lab-work.telemetry.jsonl",
                    help="local telemetry JSONL path "
                         "(default: lab-work.telemetry.jsonl)")

    st = lab_sub.add_parser("status", help="job counts + telemetry summary")
    add_db(st)
    st.add_argument("--server", default=None,
                    help="query a running lab server instead of --db")
    add_token(st)
    st.add_argument("--run", type=int, default=None, help="restrict to one run id")
    st.add_argument("--telemetry", default=None)
    st.add_argument("--watch", action="store_true",
                    help="refresh live: per-status counts, rows/sec and ETA "
                         "until the queue drains")
    st.add_argument("--interval", type=float, default=2.0,
                    help="--watch refresh interval in seconds (default: 2)")
    st.add_argument("--refreshes", type=int, default=None,
                    help="stop --watch after this many refreshes "
                         "(default: until drained)")

    rs = lab_sub.add_parser("reset", help="re-queue failed (or running) jobs")
    add_db(rs)
    rs.add_argument("--running", action="store_true",
                    help="also reset running jobs (after a crashed pool)")
    rs.add_argument("--run", type=int, default=None)

    ex = lab_sub.add_parser("export", help="export done-job rows to JSON/CSV")
    add_db(ex)
    ex.add_argument("--server", default=None,
                    help="export from a running lab server instead of --db")
    add_token(ex)
    ex.add_argument("output", help="output path (.json or .csv)")
    ex.add_argument("--format", choices=["json", "csv"], default=None,
                    help="default: inferred from the output suffix")
    ex.add_argument("--run", type=int, default=None)
    ex.add_argument("--drop-timing", action="store_true",
                    help="omit run-history columns (wall_s, attempt) so "
                         "identical grids export byte-identical files "
                         "regardless of retries or worker placement")
    ex.add_argument("--with-spans", action="store_true",
                    help="join job_spans telemetry (from `lab run --obs`) "
                         "into the rows by job_id")

    ch = lab_sub.add_parser(
        "chaos",
        help="fault-inject a live server run and check lab invariants",
    )
    ch.add_argument("--seed", type=int, default=0,
                    help="fault-plan seed; same seed => same fault log "
                         "and byte-identical exports (default: 0)")
    ch.add_argument("--workdir", default=None,
                    help="working directory for stores, cache, fault log "
                         "and exports (default: a fresh temp directory)")
    ch.add_argument("--workers", type=int, default=2,
                    help="worker incarnations; all but the last get a "
                         "kill rule (default: 2)")
    ch.add_argument("--kill-after", type=int, default=1,
                    help="jobs a doomed worker completes before its kill "
                         "(default: 1)")
    ch.add_argument("--lease", type=float, default=2.0,
                    help="claim-lease seconds for the chaos server; small "
                         "so killed jobs re-queue quickly (default: 2)")
    ch.add_argument("--max-attempts", type=int, default=8,
                    help="attempt budget per job under chaos (default: 8)")
    ch.add_argument("--report", default=None,
                    help="also write the full JSON report to this path")
    ch.add_argument("--experiments", type=_comma_list(str),
                    default=("smooth",),
                    help="comma list (default: smooth — fast, no memsim)")
    ch.add_argument("--domains", type=_comma_list(str), default=("ocean",))
    ch.add_argument("--orderings", type=_comma_list(str),
                    default=("ori", "rdr"))
    ch.add_argument("--vertices", type=_comma_list(int), default=(150, 200))
    ch.add_argument("--max-iterations", type=int, default=2)


def _cmd_generate(args) -> int:
    mesh = generate_domain_mesh(
        args.domain,
        target_vertices=args.vertices,
        seed=args.seed,
        quality_structure=args.quality_structure,
    )
    node, ele = write_triangle(mesh, args.output)
    print(
        f"{args.domain}: {mesh.num_vertices} vertices, "
        f"{mesh.num_triangles} triangles, initial quality "
        f"{global_quality(mesh):.4f}"
    )
    print(f"wrote {node} and {ele}")
    return 0


def _cmd_smooth(args) -> int:
    config = run_config_from_args(args)
    mesh = read_triangle(args.input)
    with obs.activated(config.obs):
        if args.report_cache and args.ordering:
            run = run_ordering(mesh, args.ordering, config=config,
                               traversal=args.traversal,
                               max_iterations=args.max_iterations)
            result = run.smoothing
            st = run.cache
            print(
                f"cache (simulated): L1 {st.l1.miss_rate:.3%} "
                f"L2 {st.l2.miss_rate:.3%} L3 {st.l3.miss_rate:.3%} miss rates; "
                f"modeled time {run.modeled_seconds * 1e3:.3f} ms"
            )
            smoothed = result.mesh
        else:
            if args.ordering:
                mesh, _ = apply_ordering(
                    mesh, args.ordering, seed=config.seed,
                    order_engine=config.order_engine, backend=config.backend,
                )
            result = laplacian_smooth(
                mesh, config=config, traversal=args.traversal,
                max_iterations=args.max_iterations,
            )
            smoothed = result.mesh
    _report_obs_outputs(config)
    print(
        f"smoothed in {result.iterations} iterations "
        f"({'converged' if result.converged else 'iteration cap'}): "
        f"quality {result.initial_quality:.4f} -> {result.final_quality:.4f}"
    )
    if args.output:
        node, ele = write_triangle(smoothed, args.output)
        print(f"wrote {node} and {ele}")
    return 0


def _cmd_reorder(args) -> int:
    config = run_config_from_args(args)
    mesh = read_triangle(args.input)
    permuted, _ = apply_ordering(
        mesh, args.ordering, seed=config.seed,
        order_engine=config.order_engine, backend=config.backend,
    )
    node, ele = write_triangle(permuted, args.output)
    print(f"reordered {mesh.num_vertices} vertices with {args.ordering!r}")
    print(f"wrote {node} and {ele}")
    if args.report_cost:
        cost = measure_reordering_cost(
            mesh, args.ordering, order_engine=config.order_engine
        )
        print(
            f"reordering cost: {cost.ordering_seconds * 1e3:.2f} ms "
            f"= {cost.iterations_equivalent:.2f} smoothing iterations"
        )
    return 0


def _analyze_mesh(args, config: RunConfig):
    """The analyzed mesh: read from files, or generated via ``--domain``."""
    if args.input is not None:
        return read_triangle(args.input)
    if args.domain is None:
        raise UnknownNameError(
            "analyze input", "<missing>", ["<stem>", "--domain <name>"]
        )
    if args.domain == "unit-square":
        # Perturbed structured unit square (the engine benchmarks' mesh):
        # n x n grid sized to the vertex budget, interior jittered so the
        # smoother has work to do.
        n = max(4, int(round(args.vertices ** 0.5)))
        with obs.span("meshgen.generate", domain="unit-square", vertices=n * n):
            mesh = structured_rectangle(n, n, name=f"unit-square-{n}x{n}")
            return perturb_interior(
                mesh, amplitude=0.2 / n, seed=config.seed
            )
    return generate_domain_mesh(
        args.domain, target_vertices=args.vertices, seed=config.seed
    )


def _report_obs_outputs(config: RunConfig) -> None:
    if config.obs.trace_path:
        print(f"wrote span trace to {config.obs.trace_path}")
    if config.obs.metrics_path:
        print(f"wrote metrics snapshot to {config.obs.metrics_path}")


def _cmd_analyze(args) -> int:
    from .memsim import per_array_breakdown, trace_summary

    config = run_config_from_args(args)
    if config.trace_mode == "spill" and not args.save_trace:
        print(
            "error: --trace-mode spill needs --save-trace DIR for the "
            "chunked trace directory",
            file=sys.stderr,
        )
        return 2
    with obs.activated(config.obs):
        mesh = _analyze_mesh(args, config)
        run = run_ordering(
            mesh,
            args.ordering,
            config=config,
            fixed_iterations=args.iterations,
            trace_dir=(
                args.save_trace if config.trace_mode == "spill" else None
            ),
        )
        if config.trace_mode == "materialize":
            summary = trace_summary(run.trace, run.layout)
            rows = [
                b.as_row()
                for b in per_array_breakdown(
                    run.trace, run.layout, run.machine, config=config
                )
            ]
    if config.trace_mode == "materialize":
        print(
            f"trace: {summary['length']} accesses over "
            f"{summary['iterations']} iteration(s), "
            f"{summary['distinct_lines']} distinct lines, "
            f"cold fraction {summary['cold_fraction']:.1%}"
        )
        print(
            format_table(rows, title=f"per-array breakdown ({args.ordering})")
        )
    else:
        # The streamed modes never materialize the trace, so the
        # per-array breakdown is unavailable; the summary statistics
        # below are bit-identical to the materialized path.
        st = run.cache
        print(
            f"trace ({config.trace_mode}): "
            f"{run.fused.reuse.num_accesses} accesses over "
            f"{run.smoothing.iterations} iteration(s)"
        )
        print(
            f"miss rates: L1 {st.l1.miss_rate:.3%} "
            f"L2 {st.l2.miss_rate:.3%} L3 {st.l3.miss_rate:.3%}"
        )
    prof = run.reuse_profile()
    print(
        f"reuse distance (1st iteration): q50={prof.q50} q75={prof.q75} "
        f"q90={prof.q90} max={prof.q100}"
    )
    print(f"modeled time: {run.modeled_seconds * 1e3:.3f} ms on {run.machine.name}")
    if args.save_trace:
        if config.trace_mode == "materialize":
            path = run.trace.save_npz(args.save_trace)
            print(f"wrote trace to {path}")
        elif config.trace_mode == "spill":
            print(f"wrote chunked trace to {run.trace_dir}")
        else:
            print(
                "note: --save-trace is ignored under --trace-mode fused "
                "(the trace is never materialized); use spill instead"
            )
    _report_obs_outputs(config)
    return 0


def _cmd_parallel(args) -> int:
    from .core import run_parallel_ordering

    config = run_config_from_args(args)
    mesh = read_triangle(args.input)
    with obs.activated(config.obs):
        run = run_parallel_ordering(
            mesh,
            args.ordering,
            args.cores,
            config=config,
            iterations=args.iterations,
            affinity=args.affinity,
        )
    counts = run.result.access_counts()
    _report_obs_outputs(config)
    print(
        f"{args.ordering!r} on {args.cores} core(s) "
        f"({args.affinity} affinity, {run.iterations} iteration(s)): "
        f"modeled time {run.modeled_seconds * 1e3:.3f} ms"
    )
    print(
        f"accesses: L2 {counts['L2']}, L3 {counts['L3']}, "
        f"memory {counts['memory']}"
    )
    for cr in run.result.per_core:
        st = cr.stats
        print(
            f"  core {cr.core} (socket {cr.socket}): "
            f"L1 {st.l1.miss_rate:.3%} L2 {st.l2.miss_rate:.3%} "
            f"L3 {st.l3.miss_rate:.3%} miss rates"
        )
    return 0


def _cmd_experiment(args) -> int:
    kwargs = {}
    if args.scale is not None:
        kwargs["suite_scale"] = args.scale
        kwargs["scaling_scale"] = max(args.scale, 3 * args.scale)
    cfg = bench.BenchConfig.from_run_config(run_config_from_args(args), **kwargs)
    print(EXPERIMENTS[args.name](cfg))
    return 0


def _cmd_list() -> int:
    from .lab import EXPERIMENT_RUNNERS

    print("domains:    ", ", ".join(list_domains()))
    print("orderings:  ", ", ".join(sorted(ORDERINGS)))
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    print("lab:        ", ", ".join(sorted(EXPERIMENT_RUNNERS)))
    for axis, choices in engine_axes().items():
        label = axis.replace("_engine", " engines").replace("_", " ")
        if not label.endswith("s"):
            label += "s"
        print(f"{label + ':':<12}", ", ".join(choices))
    return 0


# ---------------------------------------------------------------------------
# lab subcommands
# ---------------------------------------------------------------------------
def _lab_paths(args) -> tuple[Path, Path, Path]:
    """(db, artifact-cache dir, telemetry file) with per-db defaults."""
    db = Path(args.db)
    cache_dir = Path(getattr(args, "cache_dir", None) or f"{db}.artifacts")
    telemetry = Path(getattr(args, "telemetry", None) or f"{db}.telemetry.jsonl")
    return db, cache_dir, telemetry


def _lab_token(args) -> str | None:
    """--token, falling back to the $REPRO_LAB_TOKEN environment."""
    return getattr(args, "token", None) or os.environ.get("REPRO_LAB_TOKEN")


def _server_store(url: str, token: str | None):
    """An :class:`HttpJobStore` for a validated, reachable ``--server``.

    A malformed URL or an unreachable/incompatible server exits 2 with
    the usual one-line message (via the ``main`` handlers).
    """
    from urllib.parse import urlparse

    from .lab import open_backend

    parsed = urlparse(url)
    if parsed.scheme not in ("http", "https") or not parsed.netloc:
        raise UnknownNameError(
            "server URL", url, ["http://<host>:<port>", "https://<host>:<port>"]
        )
    store = open_backend(url, token=token)
    store.ping()
    return store


def _lab_store(args):
    """The store a lab subcommand addresses: ``--server`` or ``--db``."""
    from .lab import JobStore

    server = getattr(args, "server", None)
    if server:
        return _server_store(server, _lab_token(args))
    return JobStore(Path(args.db))


def _cmd_lab(args) -> int:
    from .lab import (
        ExperimentGrid,
        JobStore,
        LabServer,
        format_summary,
        run_pool,
        summarize,
        watch_status,
    )

    if args.lab_command == "work":
        # No --db: everything goes through the server; artifacts and
        # telemetry stay host-local.
        _server_store(args.server, _lab_token(args)).close()  # fail fast
        counts = run_pool(
            args.server,
            Path(args.cache_dir),
            Path(args.telemetry),
            workers=args.workers,
            job_timeout_s=args.timeout,
            retry_base_s=args.retry_base,
            max_jobs=args.max_jobs,
            obs_spans=args.obs,
            token=_lab_token(args),
        )
        print(
            f"done {counts['done']}, failed {counts['failed']}, "
            f"pending {counts['pending']}, running {counts['running']}"
        )
        print(format_summary(summarize(Path(args.telemetry))))
        return 0 if counts["failed"] == 0 and counts["pending"] == 0 else 1

    if args.lab_command == "chaos":
        import tempfile

        from .lab import run_chaos

        grid = ExperimentGrid(
            experiments=args.experiments,
            domains=args.domains,
            orderings=args.orderings,
            vertices=args.vertices,
            max_iterations=args.max_iterations,
        ).validate()
        workdir = args.workdir or tempfile.mkdtemp(prefix="repro-lab-chaos-")
        report = run_chaos(
            grid,
            seed=args.seed,
            workdir=workdir,
            workers=args.workers,
            kill_after=args.kill_after,
            lease_s=args.lease,
            max_attempts=args.max_attempts,
            report_path=args.report,
        )
        counts = ", ".join(
            f"{kind} x{n}" for kind, n in sorted(report["fault_counts"].items())
        )
        print(
            f"chaos seed {report['seed']}: {report['jobs']} jobs, "
            f"{report['worker_incarnations']} worker incarnation(s), "
            f"faults: {counts or 'none'}"
        )
        for name, ok in report["checks"].items():
            print(f"  {'ok  ' if ok else 'FAIL'} {name}")
        for violation in report["violations"]:
            print(f"  !! {violation}")
        print(f"fault log + exports in {report['workdir']}")
        return 0 if report["ok"] else 1

    db, cache_dir, telemetry = _lab_paths(args)

    if args.lab_command == "init":
        grid = ExperimentGrid(
            experiments=args.experiments,
            domains=args.domains,
            orderings=args.orderings,
            vertices=args.vertices,
            seeds=args.seeds,
            cache_scales=args.cache_scales,
            quality_structure=args.quality_structure,
            max_iterations=args.max_iterations,
            # One plural axis per engine_axes() entry (--engines,
            # --sim-engines, ..., --backends).
            **{
                axis + "s": getattr(args, axis + "s")
                for axis in engine_axes()
            },
            stream_windows=tuple(args.stream_windows) or (None,),
        ).validate()
        store = _lab_store(args)
        where = args.server if args.server else db
        latest = store.latest_run_id()
        stored = store.run_grid(latest) if latest is not None else None
        if (
            not args.force_new
            and stored is not None
            and ExperimentGrid.from_dict(stored) == grid
        ):
            counts = store.counts(latest)
            print(
                f"run {latest} already holds this grid "
                f"({sum(counts.values())} jobs: {counts['pending']} pending, "
                f"{counts['done']} done); use --force-new for a fresh run"
            )
            return 0
        specs = grid.expand()
        run_id, inserted = store.create_run(
            grid.as_dict(),
            [(s.key(), s.as_dict()) for s in specs],
            max_attempts=args.max_attempts,
        )
        print(f"run {run_id}: {inserted} jobs queued in {where}")
        return 0

    if args.lab_command == "run":
        counts = run_pool(
            db,
            cache_dir,
            telemetry,
            workers=args.workers,
            job_timeout_s=args.timeout,
            retry_base_s=args.retry_base,
            max_jobs=args.max_jobs,
            obs_spans=args.obs,
            lease_s=args.lease,
        )
        print(
            f"done {counts['done']}, failed {counts['failed']}, "
            f"pending {counts['pending']}, running {counts['running']}"
        )
        print(format_summary(summarize(telemetry)))
        return 0 if counts["failed"] == 0 and counts["pending"] == 0 else 1

    if args.lab_command == "serve":
        server = LabServer(
            db,
            host=args.host,
            port=args.port,
            token=_lab_token(args),
            lease_s=args.lease,
        )
        auth = "token required" if server.token else "no auth"
        print(f"serving {db} on {server.url} ({auth}, "
              f"lease {server.store.lease_s:.0f}s); Ctrl-C to stop")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
        return 0

    if args.lab_command == "status":
        store = _lab_store(args)
        scope = f"run {args.run}" if args.run is not None else "all runs"
        where = args.server if args.server else db
        if args.watch:
            print(f"{where} ({scope}): watching")
            watch_status(
                lambda: store.counts(args.run),
                interval_s=args.interval,
                max_refreshes=args.refreshes,
            )
            return 0
        counts = store.counts(args.run)
        total = sum(counts.values())
        print(f"{where} ({scope}): {total} jobs")
        for status, n in counts.items():
            print(f"  {status:8s} {n}")
        if not args.server and telemetry.exists():
            print(format_summary(summarize(telemetry)))
        return 0

    if args.lab_command == "reset":
        store = JobStore(db)
        statuses = ("failed", "running") if args.running else ("failed",)
        n = store.reset(statuses=statuses, run_id=args.run)
        print(f"re-queued {n} job(s) from {', '.join(statuses)}")
        return 0

    if args.lab_command == "export":
        store = _lab_store(args)
        rows = store.results(args.run)
        if args.drop_timing:
            # wall_s and attempt are run history, not results: dropping
            # them makes exports byte-identical across reruns, retries
            # and local-vs-distributed execution of the same grid.  The
            # chaos harness leans on the same filter for its reference
            # comparison, so they must stay one implementation.
            from .lab import drop_timing_rows

            rows = drop_timing_rows(rows)
        if args.with_spans:
            from .lab.telemetry import read_events

            spans_by_job: dict[int, dict] = {}
            if telemetry.exists():
                for event in read_events(telemetry):
                    if event.get("event") == "job_spans":
                        spans_by_job[event["job_id"]] = {
                            "spans": event.get("spans"),
                            "metrics": event.get("metrics"),
                        }
            for row in rows:
                row.update(spans_by_job.get(row["job_id"], {}))
        out = Path(args.output)
        fmt = args.format or ("csv" if out.suffix == ".csv" else "json")
        if fmt == "csv":
            save_csv(out, rows)
        else:
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(rows, indent=2, default=str))
        print(f"wrote {len(rows)} result row(s) to {out}")
        return 0

    raise AssertionError("unreachable")


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "smooth": _cmd_smooth,
        "reorder": _cmd_reorder,
        "analyze": _cmd_analyze,
        "parallel": _cmd_parallel,
        "experiment": _cmd_experiment,
        "lab": _cmd_lab,
        "list": lambda _args: _cmd_list(),
    }
    try:
        return handlers[args.command](args)
    except UnknownNameError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except StoreConnectionError as exc:
        # Bad or unreachable --server targets: same one-line convention.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        # Registry lookups (domains/orderings/experiments) raise KeyError
        # with a message listing the valid choices.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename or exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into e.g. `head`; not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
