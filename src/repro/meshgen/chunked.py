"""Out-of-core structured meshes: strip iterator + on-disk .npy mesh.

At the million-vertex scale the in-memory generator still fits, but the
point of the streaming pipeline is that no stage *requires* the whole
mesh at once. This module emits a structured rectangle strip by strip —
each strip is a contiguous band of vertex rows plus the triangles of the
cell rows it starts — and can write the mesh straight into a pair of
``.npy`` memmaps (``vertices.npy`` / ``triangles.npy`` plus a
``mesh.json`` manifest) without ever materializing more than one strip.

Determinism: the optional interior perturbation is seeded per vertex
row, so the generated mesh is a pure function of
``(rows, cols, seed, amplitude)`` — it does not depend on how the rows
were partitioned into strips. Note the row-seeded scheme is distinct
from :func:`repro.meshgen.perturb_interior` (which draws one stream over
the whole mesh and therefore cannot be produced a strip at a time).

The ``refine`` knob implements structured refinement: each level splits
every cell in four by doubling the vertex rows and columns, so level
``k`` of an ``(r, c)`` grid has ``((r-1)·2^k + 1, (c-1)·2^k + 1)``
vertices. A coarse spec plus a refinement level is how the scale
benchmark names its million-vertex meshes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from ..mesh import TriMesh
from .structured import strip_triangles

__all__ = [
    "MeshStrip",
    "iter_structured_strips",
    "write_structured_rectangle",
    "load_chunked_mesh",
    "refined_shape",
]

MESH_MANIFEST = "mesh.json"
_FORMAT = "chunked-mesh-v1"


def refined_shape(rows: int, cols: int, refine: int = 0) -> tuple[int, int]:
    """Vertex shape of ``refine`` levels of structured refinement."""
    if rows < 2 or cols < 2:
        raise ValueError("rows and cols must be >= 2")
    if refine < 0:
        raise ValueError("refine must be >= 0")
    return (rows - 1) * 2**refine + 1, (cols - 1) * 2**refine + 1


@dataclass(frozen=True)
class MeshStrip:
    """One band of a structured rectangle.

    ``vertices`` covers vertex rows ``[row_start, row_end)``;
    ``triangles`` (global vertex ids) covers the cell rows starting in
    the band, so they may reference vertex row ``row_end`` — the first
    row of the next strip (a one-row halo).
    """

    row_start: int
    row_end: int
    vertex_offset: int
    vertices: np.ndarray
    triangles: np.ndarray


def _perturbed_rows(
    row_start: int,
    row_end: int,
    rows: int,
    cols: int,
    xs: np.ndarray,
    ys: np.ndarray,
    amplitude: float,
    seed: int,
) -> np.ndarray:
    block = np.empty(((row_end - row_start) * cols, 2), dtype=np.float64)
    for i, r in enumerate(range(row_start, row_end)):
        row = block[i * cols : (i + 1) * cols]
        row[:, 0] = xs
        row[:, 1] = ys[r]
        if amplitude > 0.0 and 0 < r < rows - 1:
            # Seeding by (seed, row) makes the mesh independent of the
            # strip partition; boundary columns stay put.
            noise = np.random.default_rng([seed, r]).uniform(
                -amplitude, amplitude, size=(cols, 2)
            )
            row[1 : cols - 1] += noise[1 : cols - 1]
    return block


def iter_structured_strips(
    rows: int,
    cols: int,
    *,
    width: float = 1.0,
    height: float = 1.0,
    diagonal: str = "alternating",
    strip_rows: int = 256,
    refine: int = 0,
    perturb_amplitude: float = 0.0,
    seed: int = 0,
) -> Iterator[MeshStrip]:
    """Yield a structured rectangle one strip of vertex rows at a time.

    Strips partition the vertex rows; concatenating their vertex blocks
    and triangle blocks in order reproduces
    :func:`repro.meshgen.structured_rectangle` exactly (when
    ``perturb_amplitude`` is zero). Peak memory is one strip.
    """
    rows, cols = refined_shape(rows, cols, refine)
    if strip_rows < 1:
        raise ValueError("strip_rows must be >= 1")
    xs = np.linspace(0.0, width, cols)
    ys = np.linspace(0.0, height, rows)
    for r0 in range(0, rows, strip_rows):
        r1 = min(r0 + strip_rows, rows)
        block = _perturbed_rows(
            r0, r1, rows, cols, xs, ys, perturb_amplitude, seed
        )
        tris = strip_triangles(r0, min(r1, rows - 1), cols, diagonal)
        yield MeshStrip(
            row_start=r0,
            row_end=r1,
            vertex_offset=r0 * cols,
            vertices=block,
            triangles=tris,
        )


def write_structured_rectangle(
    out_dir: str | Path,
    rows: int,
    cols: int,
    *,
    width: float = 1.0,
    height: float = 1.0,
    name: str = "rect",
    diagonal: str = "alternating",
    strip_rows: int = 256,
    refine: int = 0,
    perturb_amplitude: float = 0.0,
    seed: int = 0,
) -> Path:
    """Generate a structured rectangle straight to disk, strip by strip.

    Writes ``vertices.npy`` and ``triangles.npy`` memmaps plus a
    ``mesh.json`` manifest into ``out_dir`` and returns that directory.
    Only one strip is resident at any point.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    nr, nc = refined_shape(rows, cols, refine)
    num_vertices = nr * nc
    num_triangles = 2 * (nr - 1) * (nc - 1)
    v_mm = np.lib.format.open_memmap(
        out_dir / "vertices.npy",
        mode="w+",
        dtype=np.float64,
        shape=(num_vertices, 2),
    )
    t_mm = np.lib.format.open_memmap(
        out_dir / "triangles.npy",
        mode="w+",
        dtype=np.int64,
        shape=(num_triangles, 3),
    )
    tri_cursor = 0
    for strip in iter_structured_strips(
        rows,
        cols,
        width=width,
        height=height,
        diagonal=diagonal,
        strip_rows=strip_rows,
        refine=refine,
        perturb_amplitude=perturb_amplitude,
        seed=seed,
    ):
        lo = strip.vertex_offset
        v_mm[lo : lo + strip.vertices.shape[0]] = strip.vertices
        t_mm[tri_cursor : tri_cursor + strip.triangles.shape[0]] = (
            strip.triangles
        )
        tri_cursor += strip.triangles.shape[0]
    v_mm.flush()
    t_mm.flush()
    del v_mm, t_mm
    manifest = {
        "format": _FORMAT,
        "name": name,
        "rows": nr,
        "cols": nc,
        "num_vertices": num_vertices,
        "num_triangles": num_triangles,
        "diagonal": diagonal,
        "perturb_amplitude": perturb_amplitude,
        "seed": seed,
    }
    (out_dir / MESH_MANIFEST).write_text(json.dumps(manifest, indent=2))
    return out_dir


def load_chunked_mesh(path: str | Path, *, mmap: bool = True) -> TriMesh:
    """Open a mesh written by :func:`write_structured_rectangle`.

    With ``mmap=True`` (default) the vertex and triangle arrays stay
    memory-mapped read-only, so opening a million-vertex mesh costs a
    few pages, not its footprint.
    """
    path = Path(path)
    manifest_path = path / MESH_MANIFEST
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no {MESH_MANIFEST} in {path}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != _FORMAT:
        raise ValueError(f"unrecognised mesh format in {manifest_path}")
    mode = "r" if mmap else None
    vertices = np.load(path / "vertices.npy", mmap_mode=mode)
    triangles = np.load(path / "triangles.npy", mmap_mode=mode)
    return TriMesh(vertices, triangles, name=manifest.get("name", path.name))
