"""Structured rectangular meshes: a fast generator for tests and scaling.

A structured grid mesh avoids the Delaunay cost entirely, so tests and
benchmarks that only need "a mesh of size n with interior vertices and a
quality spread" can build one in microseconds. Row-major vertex order is
the native (ORI) ordering, matching the jittered-grid scan order of the
domain generator.
"""

from __future__ import annotations

import numpy as np

from ..mesh import TriMesh, validate_mesh

__all__ = ["structured_rectangle", "perturb_interior"]


def structured_rectangle(
    rows: int,
    cols: int,
    *,
    width: float = 1.0,
    height: float = 1.0,
    name: str = "rect",
    diagonal: str = "alternating",
) -> TriMesh:
    """A (rows x cols)-vertex rectangle split into triangles.

    Parameters
    ----------
    rows, cols:
        Vertex counts per side (each >= 2).
    diagonal:
        ``"right"`` (all diagonals one way), ``"alternating"``
        (checkerboard diagonals, giving a more isotropic adjacency).
    """
    if rows < 2 or cols < 2:
        raise ValueError("rows and cols must be >= 2")
    xs = np.linspace(0.0, width, cols)
    ys = np.linspace(0.0, height, rows)
    gx, gy = np.meshgrid(xs, ys, indexing="xy")
    vertices = np.stack([gx.ravel(), gy.ravel()], axis=1)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    tris: list[tuple[int, int, int]] = []
    for r in range(rows - 1):
        for c in range(cols - 1):
            a = vid(r, c)
            b = vid(r, c + 1)
            d = vid(r + 1, c)
            e = vid(r + 1, c + 1)
            flip = diagonal == "alternating" and (r + c) % 2 == 1
            if diagonal == "right" or not flip:
                tris.append((a, b, e))
                tris.append((a, e, d))
            else:
                tris.append((a, b, d))
                tris.append((b, e, d))
    mesh = TriMesh(vertices, np.asarray(tris, dtype=np.int64), name=name)
    return validate_mesh(mesh)


def perturb_interior(
    mesh: TriMesh,
    *,
    amplitude: float,
    seed: int = 0,
) -> TriMesh:
    """Displace interior vertices by uniform noise of the given amplitude.

    Returns a new mesh sharing connectivity with the input. Used to give
    structured meshes an initial-quality spread comparable to the domain
    meshes.
    """
    rng = np.random.default_rng(seed)
    coords = mesh.vertices.copy()
    interior = mesh.interior_mask
    coords[interior] += rng.uniform(
        -amplitude, amplitude, size=(mesh.num_vertices, 2)
    )[interior]
    return mesh.with_vertices(coords)
