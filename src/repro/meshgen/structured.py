"""Structured rectangular meshes: a fast generator for tests and scaling.

A structured grid mesh avoids the Delaunay cost entirely, so tests and
benchmarks that only need "a mesh of size n with interior vertices and a
quality spread" can build one in microseconds. Row-major vertex order is
the native (ORI) ordering, matching the jittered-grid scan order of the
domain generator.

Connectivity is built fully vectorized: :func:`strip_triangles` emits
the triangles of any contiguous band of cell rows in one NumPy
expression, which both keeps :func:`structured_rectangle` fast at the
million-vertex scale and lets the tiled generator
(:mod:`repro.meshgen.chunked`) stitch a mesh strip by strip without ever
holding more than one band.
"""

from __future__ import annotations

import numpy as np

from ..mesh import TriMesh, validate_mesh

__all__ = ["structured_rectangle", "strip_triangles", "perturb_interior"]


def strip_triangles(
    row_start: int, row_end: int, cols: int, diagonal: str = "alternating"
) -> np.ndarray:
    """Triangles of the cell rows ``[row_start, row_end)`` of a grid.

    Vertex ids are global (``r * cols + c`` row-major), cells are emitted
    in row-major order with two triangles per cell — the exact element
    order of the historical per-cell loop, so strips of consecutive rows
    concatenate to the full :func:`structured_rectangle` connectivity.

    ``diagonal="alternating"`` flips the split of cells with odd
    ``r + c`` (checkerboard); any other value splits every cell the same
    way (``"right"``).
    """
    nr = row_end - row_start
    if nr <= 0 or cols < 2:
        return np.empty((0, 3), dtype=np.int64)
    r = np.repeat(np.arange(row_start, row_end, dtype=np.int64), cols - 1)
    c = np.tile(np.arange(cols - 1, dtype=np.int64), nr)
    a = r * cols + c  # top-left corner of each cell
    b = a + 1
    d = a + cols
    e = d + 1
    tris = np.empty((a.size, 2, 3), dtype=np.int64)
    if diagonal == "alternating":
        flip = (r + c) % 2 == 1
        tris[:, 0, 2] = np.where(flip, d, e)
        tris[:, 1, 0] = np.where(flip, b, a)
    else:
        tris[:, 0, 2] = e
        tris[:, 1, 0] = a
    tris[:, 0, 0] = a
    tris[:, 0, 1] = b
    tris[:, 1, 1] = e
    tris[:, 1, 2] = d
    return tris.reshape(-1, 3)


def structured_rectangle(
    rows: int,
    cols: int,
    *,
    width: float = 1.0,
    height: float = 1.0,
    name: str = "rect",
    diagonal: str = "alternating",
) -> TriMesh:
    """A (rows x cols)-vertex rectangle split into triangles.

    Parameters
    ----------
    rows, cols:
        Vertex counts per side (each >= 2).
    diagonal:
        ``"right"`` (all diagonals one way), ``"alternating"``
        (checkerboard diagonals, giving a more isotropic adjacency).
    """
    if rows < 2 or cols < 2:
        raise ValueError("rows and cols must be >= 2")
    xs = np.linspace(0.0, width, cols)
    ys = np.linspace(0.0, height, rows)
    gx, gy = np.meshgrid(xs, ys, indexing="xy")
    vertices = np.stack([gx.ravel(), gy.ravel()], axis=1)
    tris = strip_triangles(0, rows - 1, cols, diagonal)
    mesh = TriMesh(vertices, tris, name=name)
    return validate_mesh(mesh)


def perturb_interior(
    mesh: TriMesh,
    *,
    amplitude: float,
    seed: int = 0,
) -> TriMesh:
    """Displace interior vertices by uniform noise of the given amplitude.

    Returns a new mesh sharing connectivity with the input. Used to give
    structured meshes an initial-quality spread comparable to the domain
    meshes.
    """
    rng = np.random.default_rng(seed)
    coords = mesh.vertices.copy()
    interior = mesh.interior_mask
    coords[interior] += rng.uniform(
        -amplitude, amplitude, size=(mesh.num_vertices, 2)
    )[interior]
    return mesh.with_vertices(coords)
