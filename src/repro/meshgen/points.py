"""Point-set generation for domain meshing.

The generators place boundary points along the domain rings at a target
spacing ``h`` and interior points on an ``h``-pitch jittered grid (or a
Halton sequence) clipped to the domain with a safety margin from the
boundary. The jitter keeps the Delaunay predicates away from degenerate
co-circular configurations and gives every mesh a realistic quality
spread for the smoother to work on.
"""

from __future__ import annotations

import numpy as np

from .geometry import distance_to_rings, points_in_rings, resample_ring

__all__ = ["halton", "jittered_grid", "interior_points", "boundary_points"]


def halton(n: int, base: int) -> np.ndarray:
    """First ``n`` terms of the van der Corput sequence in ``base``."""
    out = np.zeros(n)
    for i in range(n):
        f, x = 1.0, 0.0
        k = i + 1
        while k > 0:
            f /= base
            x += f * (k % base)
            k //= base
        out[i] = x
    return out


def jittered_grid(
    lo: np.ndarray,
    hi: np.ndarray,
    h: float,
    rng: np.random.Generator,
    *,
    jitter: float = 0.25,
) -> np.ndarray:
    """Grid of pitch ``h`` over [lo, hi] with uniform jitter of ``jitter*h``.

    Rows are emitted in row-major scan order; this order is what the
    "original" (ORI) vertex ordering of generated meshes inherits, playing
    the role of Triangle's divide-and-conquer output order: spatially
    semi-coherent, but not aligned with any smoothing traversal.
    """
    xs = np.arange(lo[0] + 0.5 * h, hi[0], h)
    ys = np.arange(lo[1] + 0.5 * h, hi[1], h)
    if xs.size == 0 or ys.size == 0:
        return np.empty((0, 2))
    gx, gy = np.meshgrid(xs, ys, indexing="xy")
    pts = np.stack([gx.ravel(), gy.ravel()], axis=1)
    pts += rng.uniform(-jitter * h, jitter * h, size=pts.shape)
    return pts


def boundary_points(rings: list[np.ndarray], h: float) -> np.ndarray:
    """Resample every ring at spacing ``h``; concatenated ring-by-ring."""
    return np.concatenate([resample_ring(r, h) for r in rings])


def interior_points(
    rings: list[np.ndarray],
    h: float,
    rng: np.random.Generator,
    *,
    margin: float = 0.6,
    jitter: float = 0.25,
) -> np.ndarray:
    """Jittered-grid points strictly inside the domain.

    Points closer than ``margin * h`` to any ring are dropped so the
    boundary resampling controls the element size near the outline and
    no sliver triangles appear there.
    """
    stacked = np.concatenate(rings)
    lo = stacked.min(axis=0)
    hi = stacked.max(axis=0)
    pts = jittered_grid(lo, hi, h, rng, jitter=jitter)
    if pts.size == 0:
        return pts
    keep = points_in_rings(pts, rings)
    pts = pts[keep]
    if pts.size == 0:
        return pts
    far = distance_to_rings(pts, rings) > margin * h
    return pts[far]
