"""Mesh generation substrate: Delaunay triangulator + the nine domains."""

from .delaunay import DelaunayError, delaunay, morton_order
from .domains import (
    PAPER_SUITE,
    MeshSpec,
    domain_rings,
    generate_domain_mesh,
    list_domains,
    paper_suite,
)
from .structured import perturb_interior, structured_rectangle

__all__ = [
    "DelaunayError",
    "MeshSpec",
    "PAPER_SUITE",
    "delaunay",
    "domain_rings",
    "generate_domain_mesh",
    "list_domains",
    "morton_order",
    "paper_suite",
    "perturb_interior",
    "structured_rectangle",
]
