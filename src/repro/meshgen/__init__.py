"""Mesh generation substrate: Delaunay triangulator + the nine domains."""

from .chunked import (
    MeshStrip,
    iter_structured_strips,
    load_chunked_mesh,
    refined_shape,
    write_structured_rectangle,
)
from .delaunay import DelaunayError, delaunay, morton_order
from .domains import (
    PAPER_SUITE,
    MeshSpec,
    domain_rings,
    generate_domain_mesh,
    list_domains,
    paper_suite,
)
from .structured import perturb_interior, strip_triangles, structured_rectangle

__all__ = [
    "DelaunayError",
    "MeshSpec",
    "MeshStrip",
    "PAPER_SUITE",
    "delaunay",
    "domain_rings",
    "generate_domain_mesh",
    "iter_structured_strips",
    "list_domains",
    "load_chunked_mesh",
    "morton_order",
    "paper_suite",
    "perturb_interior",
    "refined_shape",
    "strip_triangles",
    "structured_rectangle",
    "write_structured_rectangle",
]
