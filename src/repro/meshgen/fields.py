"""Quality-structuring perturbation fields for generated meshes.

How the initial quality is *spatially organised* decides how coherent
the quality-greedy smoothing traversal is — and therefore how well any
a-priori ordering can align with it. Real unstructured meshes (the
paper's Triangle meshes) are worst near boundaries and features and
improve inward, so their quality level sets are nested and the greedy
traversal sweeps coherently. The generators reproduce that structure:

``ramp`` (default)
    Anti-smoothing (each interior vertex pushed *away* from its neighbor
    centroid — the exact inverse of Equation 1) with strength decaying
    with distance to the domain boundary. Quality correlates with
    boundary distance; level sets are nested offsets of the outline.
``hotspots``
    The ramp plus a few Gaussian interior "feature" spots of extra
    distortion (separate bad regions, like refinement zones).
``uniform``
    White-noise displacement: spatially uncorrelated quality. This is
    the adversarial case for quality-driven orderings and is kept for
    the ablation benches.
"""

from __future__ import annotations

import numpy as np

from ..mesh import TriMesh
from .geometry import distance_to_rings

__all__ = ["apply_quality_structure", "QUALITY_STRUCTURES", "anti_smoothing_directions"]

QUALITY_STRUCTURES = ("ramp", "hotspots", "uniform")


def anti_smoothing_directions(mesh: TriMesh) -> np.ndarray:
    """Per-vertex displacement direction: away from the neighbor centroid.

    This is exactly minus the Laplacian smoothing step, so applying it
    *degrades* quality deterministically: each vertex's distortion is a
    smooth function of the local geometry, not random noise — which
    keeps the per-vertex quality field spatially coherent.
    """
    g = mesh.adjacency
    xadj, adjncy = g.xadj, g.adjncy
    deg = np.diff(xadj)
    pts = mesh.vertices
    if adjncy.size == 0:
        return np.zeros_like(pts)
    offsets = np.minimum(xadj[:-1], adjncy.size - 1)
    sums = np.add.reduceat(pts[adjncy], offsets, axis=0)
    sums[deg == 0] = 0.0
    centroids = sums / np.where(deg == 0, 1, deg)[:, None]
    out = pts - centroids
    out[deg == 0] = 0.0
    return out


def apply_quality_structure(
    mesh: TriMesh,
    rings: list[np.ndarray],
    *,
    structure: str = "ramp",
    strength: float = 0.9,
    decay: float = 1.25,
    num_hotspots: int = 3,
    hotspot_radius: float = 4.0,
    spacing: float | None = None,
    rng: np.random.Generator | None = None,
) -> TriMesh:
    """Perturb interior vertices to create a structured initial quality.

    Parameters
    ----------
    structure:
        One of :data:`QUALITY_STRUCTURES`.
    strength:
        Peak anti-smoothing step fraction (0.9 means vertices move 90%
        of an inverse-Laplacian step at the boundary).
    decay:
        Exponent of the boundary-distance ramp ``(1 - d/d_max)**decay``.
    num_hotspots, hotspot_radius:
        ``hotspots`` mode: number of Gaussian distortion spots and their
        radius in units of ``spacing``.
    spacing:
        Characteristic edge length ``h``; estimated from the mesh when
        omitted (used for hotspot radii and the uniform-noise amplitude).
    """
    if structure not in QUALITY_STRUCTURES:
        raise ValueError(
            f"unknown quality structure {structure!r}; "
            f"valid structures: {', '.join(QUALITY_STRUCTURES)}"
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    pts = mesh.vertices
    interior = mesh.interior_mask
    if spacing is None:
        edges = mesh.edges()
        spacing = float(
            np.median(np.linalg.norm(pts[edges[:, 0]] - pts[edges[:, 1]], axis=1))
        )

    coords = pts.copy()
    if structure == "uniform":
        noise = rng.uniform(-0.35 * spacing, 0.35 * spacing, size=pts.shape)
        coords[interior] += noise[interior]
        return mesh.with_vertices(coords)

    d = distance_to_rings(pts, rings)
    dmax = float(d.max()) or 1.0
    amp = strength * (1.0 - d / dmax) ** decay
    if structure == "hotspots":
        for _ in range(num_hotspots):
            center = pts[rng.integers(pts.shape[0])]
            radius = rng.uniform(0.6, 1.4) * hotspot_radius * spacing
            r2 = np.sum((pts - center) ** 2, axis=1)
            amp += 0.7 * strength * np.exp(-r2 / (2.0 * radius * radius))
        amp = np.clip(amp, 0.0, 1.2 * strength)

    move = anti_smoothing_directions(mesh) * amp[:, None]
    # A pinch of incoherent noise keeps qualities distinct (deterministic
    # tie-breaking needs an injective-ish quality map) without destroying
    # the spatial structure.
    move += rng.uniform(-0.02 * spacing, 0.02 * spacing, size=pts.shape)
    coords[interior] += move[interior]
    return mesh.with_vertices(coords)
