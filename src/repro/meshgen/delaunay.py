"""A from-scratch incremental Delaunay triangulator (Bowyer-Watson).

This module replaces Jonathan Shewchuk's *Triangle* as the mesh-creation
substrate of the reproduction. It implements the classic Bowyer-Watson
incremental insertion with

* a super-triangle enclosing all points,
* point location by walking from the most recently created triangle
  (points are pre-sorted along a Morton curve so consecutive insertions
  are spatially close and walks are short),
* cavity retriangulation with full neighbor bookkeeping.

The triangulator is deliberately simple — float64 predicates with a
relative tolerance instead of exact arithmetic — which is adequate for
the jittered, non-degenerate point sets the generators feed it. The
test-suite validates the empty-circumcircle property directly and
cross-checks edge sets against ``scipy.spatial.Delaunay`` when SciPy is
available.
"""

from __future__ import annotations

import numpy as np

__all__ = ["delaunay", "morton_order", "DelaunayError"]


class DelaunayError(RuntimeError):
    """Raised when triangulation cannot proceed (duplicate points, ...)."""


def morton_order(points: np.ndarray, bits: int = 16) -> np.ndarray:
    """Indices that sort points along a Morton (Z-order) curve.

    Used to give the incremental insertion spatial locality; also reused
    by the ordering package as a cheap space-filling-curve baseline.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.size == 0:
        return np.empty(0, dtype=np.int64)
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    span[span == 0.0] = 1.0
    scale = (1 << bits) - 1
    q = np.clip((pts - lo) / span * scale, 0, scale).astype(np.uint64)
    code = np.zeros(pts.shape[0], dtype=np.uint64)
    for b in range(bits):
        code |= ((q[:, 0] >> np.uint64(b)) & np.uint64(1)) << np.uint64(2 * b)
        code |= ((q[:, 1] >> np.uint64(b)) & np.uint64(1)) << np.uint64(2 * b + 1)
    return np.argsort(code, kind="stable")


def _orient(ax, ay, bx, by, cx, cy) -> float:
    """Twice the signed area of triangle (a, b, c)."""
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


class _Triangulation:
    """Mutable triangle store with neighbor pointers.

    ``verts[t]`` holds the three CCW vertex ids of triangle ``t``;
    ``nbrs[t][i]`` is the triangle across the edge opposite ``verts[t][i]``
    (-1 when on the hull). Deleted triangles are recycled via a free list.
    """

    def __init__(self, points: np.ndarray, num_real: int):
        self.px = points[:, 0]
        self.py = points[:, 1]
        self.num_real = num_real  # vertices >= num_real are super vertices
        self.verts: list[list[int]] = []
        self.nbrs: list[list[int]] = []
        self.free: list[int] = []
        self.last = 0  # walk start hint

    # -- storage ------------------------------------------------------
    def new_tri(self, a: int, b: int, c: int) -> int:
        if self.free:
            t = self.free.pop()
            self.verts[t] = [a, b, c]
            self.nbrs[t] = [-1, -1, -1]
        else:
            t = len(self.verts)
            self.verts.append([a, b, c])
            self.nbrs.append([-1, -1, -1])
        return t

    def kill(self, t: int) -> None:
        self.verts[t] = [-1, -1, -1]
        self.free.append(t)

    def alive(self, t: int) -> bool:
        return self.verts[t][0] != -1

    # -- predicates ----------------------------------------------------
    def orient_edge(self, t: int, i: int, p: int) -> float:
        """Orientation of point p against the directed edge opposite vertex i."""
        v = self.verts[t]
        a, b = v[(i + 1) % 3], v[(i + 2) % 3]
        return _orient(
            self.px[a], self.py[a], self.px[b], self.py[b], self.px[p], self.py[p]
        )

    def in_circumcircle(self, t: int, p: int) -> bool:
        a, b, c = self.verts[t]
        n = self.num_real
        supers = [i for i, v in enumerate((a, b, c)) if v >= n]
        if supers:
            # Treat super vertices as points at infinity: the circumcircle
            # of a triangle with one infinite vertex degenerates to the
            # open half-plane left of the directed edge of its two real
            # vertices (taken in CCW triangle order). This removes the
            # hull-sliver artifacts of a finite super triangle.
            if len(supers) >= 2:
                return False
            i = supers[0]
            v = self.verts[t]
            ra, rb = v[(i + 1) % 3], v[(i + 2) % 3]
            d = _orient(
                self.px[ra],
                self.py[ra],
                self.px[rb],
                self.py[rb],
                self.px[p],
                self.py[p],
            )
            scale = (
                abs(self.px[rb] - self.px[ra]) + abs(self.py[rb] - self.py[ra])
            ) * (abs(self.px[p]) + abs(self.py[p]) + 1.0)
            return d > 1e-14 * scale
        px, py = self.px[p], self.py[p]
        adx = self.px[a] - px
        ady = self.py[a] - py
        bdx = self.px[b] - px
        bdy = self.py[b] - py
        cdx = self.px[c] - px
        cdy = self.py[c] - py
        ad = adx * adx + ady * ady
        bd = bdx * bdx + bdy * bdy
        cd = cdx * cdx + cdy * cdy
        det = (
            adx * (bdy * cd - bd * cdy)
            - ady * (bdx * cd - bd * cdx)
            + ad * (bdx * cdy - bdy * cdx)
        )
        # Scale-aware tolerance: points exactly on the circle count as
        # outside, keeping cavities minimal.
        mag = abs(ad) + abs(bd) + abs(cd)
        return det > 1e-12 * mag

    # -- point location -------------------------------------------------
    def locate(self, p: int) -> int:
        """Walk from ``self.last`` to a triangle containing point ``p``."""
        t = self.last
        if not self.alive(t):
            t = next(i for i in range(len(self.verts)) if self.alive(i))
        budget = 4 * len(self.verts) + 64
        i = 0
        while budget > 0:
            budget -= 1
            moved = False
            for k in (i % 3, (i + 1) % 3, (i + 2) % 3):
                if self.orient_edge(t, k, p) < 0.0:
                    nxt = self.nbrs[t][k]
                    if nxt == -1:
                        raise DelaunayError(
                            "walk left the triangulation; point outside hull"
                        )
                    t = nxt
                    moved = True
                    break
            if not moved:
                return t
            i += 1
        # Degenerate walk (numerical cycling): fall back to a scan.
        for t in range(len(self.verts)):
            if self.alive(t) and all(
                self.orient_edge(t, k, p) >= 0.0 for k in range(3)
            ):
                return t
        raise DelaunayError("point location failed")

    # -- insertion -------------------------------------------------------
    def insert(self, p: int) -> None:
        seed = self.locate(p)
        # Grow the cavity: all triangles whose circumcircle contains p.
        cavity = {seed}
        stack = [seed]
        while stack:
            t = stack.pop()
            for nb in self.nbrs[t]:
                if nb != -1 and nb not in cavity and self.in_circumcircle(nb, p):
                    cavity.add(nb)
                    stack.append(nb)

        # Collect the directed boundary edges (a -> b) of the cavity with
        # the outside triangle across each.
        boundary: list[tuple[int, int, int]] = []
        for t in cavity:
            v = self.verts[t]
            for i in range(3):
                nb = self.nbrs[t][i]
                if nb not in cavity or nb == -1:
                    a, b = v[(i + 1) % 3], v[(i + 2) % 3]
                    boundary.append((a, b, nb))
        for t in cavity:
            self.kill(t)

        # Retriangulate: one new triangle (a, b, p) per boundary edge.
        first_of: dict[int, int] = {}
        second_of: dict[int, int] = {}
        created: list[tuple[int, int, int, int]] = []
        for a, b, outer in boundary:
            t = self.new_tri(a, b, p)
            created.append((t, a, b, outer))
            first_of[a] = t
            second_of[b] = t
        for t, a, b, outer in created:
            self.nbrs[t][2] = outer  # across (a, b)
            if outer != -1:
                ov = self.verts[outer]
                for i in range(3):
                    x, y = ov[(i + 1) % 3], ov[(i + 2) % 3]
                    if (x, y) == (b, a):
                        self.nbrs[outer][i] = t
                        break
            self.nbrs[t][0] = first_of[b]  # across (b, p)
            self.nbrs[t][1] = second_of[a]  # across (p, a)
        self.last = created[0][0]


def delaunay(points: np.ndarray, *, presort: bool = True) -> np.ndarray:
    """Delaunay-triangulate a 2-D point set.

    Parameters
    ----------
    points:
        Float array of shape ``(n, 2)`` with ``n >= 3``, no duplicates.
    presort:
        Insert points in Morton order (faster walks). The output triangle
        vertex ids always refer to the *input* order.

    Returns
    -------
    Int64 array of shape ``(m, 3)`` of CCW triangles.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError("points must have shape (n, 2)")
    n = pts.shape[0]
    if n < 3:
        raise DelaunayError("need at least three points")
    uniq = np.unique(pts, axis=0)
    if uniq.shape[0] != n:
        raise DelaunayError("duplicate points are not supported")

    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    center = 0.5 * (lo + hi)
    diag = float(np.linalg.norm(hi - lo))
    if diag == 0.0:
        raise DelaunayError("all points coincide")
    r = 50.0 * diag
    # Super-triangle vertices appended after the real points.
    sup = center + r * np.array(
        [[0.0, 2.0], [-1.9, -1.0], [1.9, -1.0]], dtype=np.float64
    )
    allpts = np.vstack([pts, sup])

    tri = _Triangulation(allpts, n)
    t0 = tri.new_tri(n, n + 1, n + 2)
    tri.last = t0

    order = morton_order(pts) if presort else np.arange(n)
    for p in order:
        tri.insert(int(p))

    out = [
        v
        for v in tri.verts
        if v[0] != -1 and v[0] < n and v[1] < n and v[2] < n
    ]
    if not out:
        raise DelaunayError("triangulation produced no interior triangles")
    return np.asarray(out, dtype=np.int64)
