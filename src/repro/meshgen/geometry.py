"""Planar-geometry primitives used by the domain mesh generators.

A *domain* is described by a list of rings (closed polylines): the first
ring is the outer boundary, the remaining rings are holes. Functions here
are vectorized over query points; the generators call them on thousands
of candidate points at once.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "polygon_area",
    "ensure_ccw",
    "points_in_rings",
    "distance_to_rings",
    "resample_ring",
    "circle_ring",
    "rounded_rect_ring",
    "blob_ring",
]


def polygon_area(ring: np.ndarray) -> float:
    """Signed area of a closed ring (positive = counter-clockwise)."""
    p = np.asarray(ring, dtype=np.float64)
    x, y = p[:, 0], p[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


def ensure_ccw(ring: np.ndarray, ccw: bool = True) -> np.ndarray:
    """Return the ring with the requested orientation."""
    ring = np.asarray(ring, dtype=np.float64)
    if (polygon_area(ring) > 0) != ccw:
        return ring[::-1].copy()
    return ring


def points_in_rings(points: np.ndarray, rings: list[np.ndarray]) -> np.ndarray:
    """Even-odd point-in-polygon test against a set of rings.

    With the outer boundary as the first ring and holes as further rings,
    the even-odd rule directly yields "inside the domain".
    """
    pts = np.asarray(points, dtype=np.float64)
    inside = np.zeros(pts.shape[0], dtype=bool)
    px = pts[:, 0][:, None]
    py = pts[:, 1][:, None]
    for ring in rings:
        a = np.asarray(ring, dtype=np.float64)
        b = np.roll(a, -1, axis=0)
        ax, ay = a[:, 0][None, :], a[:, 1][None, :]
        bx, by = b[:, 0][None, :], b[:, 1][None, :]
        # Ray casting towards +x: edge straddles the horizontal line
        # through the point and the intersection lies right of the point.
        straddle = (ay > py) != (by > py)
        with np.errstate(divide="ignore", invalid="ignore"):
            xint = ax + (py - ay) * (bx - ax) / (by - ay)
        hit = straddle & (px < xint)
        inside ^= (np.count_nonzero(hit, axis=1) % 2).astype(bool)
    return inside


def distance_to_rings(points: np.ndarray, rings: list[np.ndarray]) -> np.ndarray:
    """Euclidean distance from each point to the nearest ring segment."""
    pts = np.asarray(points, dtype=np.float64)
    best = np.full(pts.shape[0], np.inf)
    for ring in rings:
        a = np.asarray(ring, dtype=np.float64)
        b = np.roll(a, -1, axis=0)
        ab = b - a  # (s, 2)
        ab_len2 = np.einsum("ij,ij->i", ab, ab)
        ab_len2 = np.where(ab_len2 == 0.0, 1.0, ab_len2)
        # (p, s, 2) differences; chunk points to bound memory.
        chunk = max(1, int(2_000_000 // max(1, a.shape[0])))
        for lo in range(0, pts.shape[0], chunk):
            p = pts[lo : lo + chunk]
            ap = p[:, None, :] - a[None, :, :]
            t = np.clip(np.einsum("psk,sk->ps", ap, ab) / ab_len2, 0.0, 1.0)
            closest = a[None, :, :] + t[:, :, None] * ab[None, :, :]
            d = np.linalg.norm(p[:, None, :] - closest, axis=2).min(axis=1)
            np.minimum(best[lo : lo + chunk], d, out=best[lo : lo + chunk])
    return best


def resample_ring(ring: np.ndarray, spacing: float) -> np.ndarray:
    """Resample a closed ring at (approximately) uniform arc spacing."""
    p = np.asarray(ring, dtype=np.float64)
    closed = np.vstack([p, p[:1]])
    seg = np.linalg.norm(np.diff(closed, axis=0), axis=1)
    arclen = np.concatenate([[0.0], np.cumsum(seg)])
    total = arclen[-1]
    if total <= 0:
        raise ValueError("ring has zero perimeter")
    count = max(4, int(round(total / spacing)))
    targets = np.linspace(0.0, total, count, endpoint=False)
    x = np.interp(targets, arclen, closed[:, 0])
    y = np.interp(targets, arclen, closed[:, 1])
    return np.stack([x, y], axis=1)


def circle_ring(
    center: tuple[float, float],
    radius: float,
    *,
    segments: int = 64,
) -> np.ndarray:
    """A counter-clockwise circular ring."""
    t = np.linspace(0.0, 2.0 * np.pi, segments, endpoint=False)
    return np.stack(
        [center[0] + radius * np.cos(t), center[1] + radius * np.sin(t)], axis=1
    )


def rounded_rect_ring(
    lo: tuple[float, float],
    hi: tuple[float, float],
    *,
    radius: float = 0.0,
    segments_per_corner: int = 8,
) -> np.ndarray:
    """Axis-aligned rectangle, optionally with rounded corners (CCW)."""
    x0, y0 = lo
    x1, y1 = hi
    if x1 <= x0 or y1 <= y0:
        raise ValueError("rectangle must have positive extent")
    r = min(radius, 0.5 * (x1 - x0), 0.5 * (y1 - y0))
    if r <= 0.0:
        return np.array(
            [[x0, y0], [x1, y0], [x1, y1], [x0, y1]], dtype=np.float64
        )
    pts: list[np.ndarray] = []
    corners = [
        ((x1 - r, y0 + r), -0.5 * np.pi),  # bottom-right
        ((x1 - r, y1 - r), 0.0),  # top-right
        ((x0 + r, y1 - r), 0.5 * np.pi),  # top-left
        ((x0 + r, y0 + r), np.pi),  # bottom-left
    ]
    for (cx, cy), start in corners:
        t = start + np.linspace(0.0, 0.5 * np.pi, segments_per_corner)
        pts.append(np.stack([cx + r * np.cos(t), cy + r * np.sin(t)], axis=1))
    return np.concatenate(pts)


def blob_ring(
    center: tuple[float, float],
    radius: float,
    *,
    seed: int,
    harmonics: int = 5,
    roughness: float = 0.25,
    segments: int = 96,
) -> np.ndarray:
    """An organic blob: a circle with seeded Fourier radial perturbation.

    Used for the "crake" and "lake" domains, whose exact paper geometry
    is unavailable; any irregular simply-connected shape plays the same
    role in the experiments.
    """
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 2.0 * np.pi, segments, endpoint=False)
    r = np.full_like(t, 1.0)
    for k in range(1, harmonics + 1):
        amp = roughness * rng.uniform(0.2, 1.0) / k
        phase = rng.uniform(0.0, 2.0 * np.pi)
        r += amp * np.cos(k * t + phase)
    r = np.clip(r, 0.35, None) * radius
    return np.stack(
        [center[0] + r * np.cos(t), center[1] + r * np.sin(t)], axis=1
    )
