"""The nine experiment domains (Table 1 of the paper) and mesh synthesis.

The paper meshes nine 2-D domains with Triangle: carabiner, crake,
dialog, lake, riverflow, ocean, stress, valve, wrench (M1..M9, 300-400k
vertices each). The original geometry files are not published, so we
synthesise domains with the same *roles*: nine distinct planar shapes —
multiply-connected (carabiner, ocean, stress), organic blobs (crake,
lake), elongated channels (riverflow), and mechanical outlines (dialog,
valve, wrench). Each generated mesh records its paper counterpart's
vertex/triangle counts so reports can show the scale substitution.

Mesh synthesis pipeline (see :func:`generate_domain_mesh`):

1. build the domain rings (outer boundary + holes),
2. choose the grid pitch ``h`` from the requested vertex budget,
3. sample boundary + jittered interior points,
4. Delaunay-triangulate (our Bowyer-Watson substrate),
5. drop triangles whose centroid falls outside the domain,
6. perturb interior vertices to degrade the initial quality — this is
   what gives the smoother work to do and every vertex a distinct
   initial quality, which the RDR ordering keys on.

The vertex order of the result — boundary ring order first, then
row-major grid scan order — is the mesh's **native (ORI) ordering**,
standing in for Triangle's divide-and-conquer output order: spatially
semi-coherent but aligned with no smoothing traversal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import obs
from ..mesh import TriMesh, validate_mesh
from .delaunay import delaunay
from .fields import apply_quality_structure
from .geometry import (
    blob_ring,
    circle_ring,
    ensure_ccw,
    points_in_rings,
    polygon_area,
    rounded_rect_ring,
)
from .points import boundary_points, interior_points

__all__ = [
    "MeshSpec",
    "PAPER_SUITE",
    "domain_rings",
    "generate_domain_mesh",
    "paper_suite",
    "list_domains",
]


@dataclass(frozen=True)
class MeshSpec:
    """One row of the paper's Table 1."""

    label: str  # M1..M9
    name: str
    paper_vertices: int
    paper_triangles: int


#: Table 1 of the paper.
PAPER_SUITE: tuple[MeshSpec, ...] = (
    MeshSpec("M1", "carabiner", 328082, 652920),
    MeshSpec("M2", "crake", 298898, 595638),
    MeshSpec("M3", "dialog", 306824, 611620),
    MeshSpec("M4", "lake", 375288, 747676),
    MeshSpec("M5", "riverflow", 332699, 661615),
    MeshSpec("M6", "ocean", 392674, 783040),
    MeshSpec("M7", "stress", 312763, 622868),
    MeshSpec("M8", "valve", 300985, 599368),
    MeshSpec("M9", "wrench", 386757, 771097),
)


# ---------------------------------------------------------------------------
# domain outlines
# ---------------------------------------------------------------------------
def _carabiner_rings() -> list[np.ndarray]:
    outer = rounded_rect_ring((0.0, 0.0), (6.0, 10.0), radius=2.6)
    hole = rounded_rect_ring((1.6, 1.6), (4.4, 8.4), radius=1.3)
    return [ensure_ccw(outer), ensure_ccw(hole, ccw=False)]


def _crake_rings() -> list[np.ndarray]:
    return [ensure_ccw(blob_ring((5.0, 5.0), 4.5, seed=11, roughness=0.30))]


def _dialog_rings() -> list[np.ndarray]:
    # A speech bubble: rounded box with a tail spliced into the bottom edge.
    box = rounded_rect_ring((0.0, 3.0), (10.0, 9.0), radius=1.2)
    ring: list[np.ndarray] = []
    for p in box:
        ring.append(p)
    # Insert the tail between the bottom-edge endpoints (y == 3 side).
    ring_arr = np.array(ring)
    tail = np.array([[4.0, 3.0], [2.6, 0.2], [2.4, 3.0]])
    # bottom edge runs from bottom-left corner arc to bottom-right arc;
    # splice by rebuilding: keep points with y > 3 + 1e-9 order, then walk
    # the bottom from x high to x low inserting tail.
    upper = ring_arr[ring_arr[:, 1] > 3.0 + 1e-9]
    bottom = ring_arr[ring_arr[:, 1] <= 3.0 + 1e-9]
    bottom = bottom[np.argsort(-bottom[:, 0])]  # right to left along bottom
    pieces = [upper]
    inserted = False
    rows = []
    for p in bottom:
        if not inserted and p[0] < 4.0:
            rows.extend(tail.tolist())
            inserted = True
        rows.append(p.tolist())
    pieces.append(np.array(rows))
    return [ensure_ccw(np.concatenate(pieces))]


def _lake_rings() -> list[np.ndarray]:
    return [
        ensure_ccw(
            blob_ring((5.0, 5.0), 4.8, seed=29, harmonics=7, roughness=0.35)
        )
    ]


def _riverflow_rings() -> list[np.ndarray]:
    # A sinuous channel of width ~1.6 around y = 4 + 2 sin(x * 0.9).
    x = np.linspace(0.0, 14.0, 80)
    mid = 4.0 + 2.0 * np.sin(0.9 * x)
    upper = np.stack([x, mid + 0.8], axis=1)
    lower = np.stack([x[::-1], mid[::-1] - 0.8], axis=1)
    return [ensure_ccw(np.concatenate([upper, lower]))]


def _ocean_rings() -> list[np.ndarray]:
    outer = rounded_rect_ring((0.0, 0.0), (12.0, 8.0), radius=0.6)
    island1 = blob_ring((3.5, 4.5), 1.2, seed=5, roughness=0.3)
    island2 = blob_ring((8.5, 3.0), 1.0, seed=17, roughness=0.3)
    return [
        ensure_ccw(outer),
        ensure_ccw(island1, ccw=False),
        ensure_ccw(island2, ccw=False),
    ]


def _stress_rings() -> list[np.ndarray]:
    outer = rounded_rect_ring((0.0, 0.0), (10.0, 10.0), radius=0.4)
    hole = circle_ring((5.0, 5.0), 2.0, segments=72)
    return [ensure_ccw(outer), ensure_ccw(hole, ccw=False)]


def _valve_rings() -> list[np.ndarray]:
    # A disk head on a rectangular stem.
    cx, cy, r = 5.0, 7.0, 3.0
    theta0 = -np.arccos(1.0 / 3.0)  # stem right wall meets the disk
    theta1 = np.pi + np.arccos(1.0 / 3.0)
    arc_t = np.linspace(theta0, theta1, 60)[1:-1]
    arc = np.stack([cx + r * np.cos(arc_t), cy + r * np.sin(arc_t)], axis=1)
    y_meet = cy + r * np.sin(theta0)
    ring = np.concatenate(
        [
            np.array([[4.0, 0.0], [6.0, 0.0], [6.0, y_meet]]),
            arc,  # CCW: up the right side, over the top, down the left
            np.array([[4.0, y_meet]]),
        ]
    )
    return [ensure_ccw(ring)]


def _wrench_rings() -> list[np.ndarray]:
    # A long handle with a C-shaped (open-jaw) head; the jaw opens to +x.
    cx, cy, r = 9.0, 5.0, 2.4
    jaw_half = np.deg2rad(38.0)
    attach = np.deg2rad(159.0)  # where the handle corners sit on the head
    # Lower head arc: from the handle's bottom corner round to the lower
    # jaw tip; upper arc mirrors it.
    t_lo = np.linspace(-attach, -jaw_half, 36)
    t_hi = np.linspace(jaw_half, attach, 36)
    arc_lo = np.stack([cx + r * np.cos(t_lo), cy + r * np.sin(t_lo)], axis=1)
    arc_hi = np.stack([cx + r * np.cos(t_hi), cy + r * np.sin(t_hi)], axis=1)
    jaw_inner = np.array([[cx + 0.7, cy - 0.55], [cx + 0.7, cy + 0.55]])
    ring = np.concatenate(
        [
            np.array([[0.0, 4.3]]),  # handle bottom-left
            arc_lo,  # under the head to the lower jaw tip
            jaw_inner,  # into and out of the jaw
            arc_hi,  # over the head back to the handle top corner
            np.array([[0.0, 5.7]]),  # handle top-left
        ]
    )
    return [ensure_ccw(ring)]


_BUILDERS: dict[str, Callable[[], list[np.ndarray]]] = {
    "carabiner": _carabiner_rings,
    "crake": _crake_rings,
    "dialog": _dialog_rings,
    "lake": _lake_rings,
    "riverflow": _riverflow_rings,
    "ocean": _ocean_rings,
    "stress": _stress_rings,
    "valve": _valve_rings,
    "wrench": _wrench_rings,
}


def list_domains() -> list[str]:
    """Names of the nine paper domains, in M1..M9 order."""
    return [spec.name for spec in PAPER_SUITE]


def domain_rings(name: str) -> list[np.ndarray]:
    """Rings (outer boundary first, then holes) of a named domain."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown domain {name!r}; valid domains: {', '.join(sorted(_BUILDERS))}"
        ) from None


def _domain_area(rings: list[np.ndarray]) -> float:
    total = abs(polygon_area(rings[0]))
    for hole in rings[1:]:
        total -= abs(polygon_area(hole))
    return max(total, 1e-9)


def generate_domain_mesh(
    name: str,
    *,
    target_vertices: int = 1500,
    seed: int = 0,
    quality_structure: str = "ramp",
    strength: float = 0.9,
    jitter: float = 0.12,
) -> TriMesh:
    """Generate one of the nine named domain meshes.

    Parameters
    ----------
    name:
        Domain name (see :func:`list_domains`).
    target_vertices:
        Approximate vertex budget; the achieved count is typically within
        ~15% of the request.
    seed:
        Seed controlling interior-point jitter and quality perturbation.
    quality_structure:
        How initial quality is spatially organised
        (:data:`repro.meshgen.fields.QUALITY_STRUCTURES`): ``"ramp"``
        (default, boundary-correlated like real unstructured meshes),
        ``"hotspots"``, or ``"uniform"`` (white noise, the adversarial
        ablation case).
    strength:
        Peak distortion strength (see
        :func:`repro.meshgen.fields.apply_quality_structure`).
    jitter:
        Interior grid jitter as a fraction of the pitch; small values
        keep the *undistorted* quality spread narrow so the structured
        field dominates.

    Returns
    -------
    A validated :class:`TriMesh` in its native (ORI) vertex order.
    """
    if target_vertices < 16:
        raise ValueError("target_vertices must be at least 16")
    with obs.span(
        "meshgen.generate", domain=name, target_vertices=target_vertices
    ) as sp:
        mesh = _generate_domain_mesh(
            name,
            target_vertices=target_vertices,
            seed=seed,
            quality_structure=quality_structure,
            strength=strength,
            jitter=jitter,
        )
        sp.add_event(mesh.num_vertices)
        return mesh


def _generate_domain_mesh(
    name: str,
    *,
    target_vertices: int,
    seed: int,
    quality_structure: str,
    strength: float,
    jitter: float,
) -> TriMesh:
    rings = domain_rings(name)
    area = _domain_area(rings)
    rng = np.random.default_rng(seed)
    h = float(np.sqrt(area / max(1, target_vertices)))

    bpts = boundary_points(rings, h)
    ipts = interior_points(rings, h, rng, jitter=jitter)
    pts = np.vstack([bpts, ipts]) if ipts.size else bpts
    # Deduplicate nearly coincident points (ring corners can resample onto
    # each other) while preserving the original order.
    quantized = np.round(pts / (1e-6 * h)).astype(np.int64)
    _, first = np.unique(quantized, axis=0, return_index=True)
    pts = pts[np.sort(first)]
    tris = delaunay(pts)

    centroids = pts[tris].mean(axis=1)
    keep = points_in_rings(centroids, rings)
    tris = tris[keep]
    # Drop any residual degenerate slivers along concave boundary runs.
    p = pts[tris]
    areas = 0.5 * np.abs(
        (p[:, 1, 0] - p[:, 0, 0]) * (p[:, 2, 1] - p[:, 0, 1])
        - (p[:, 1, 1] - p[:, 0, 1]) * (p[:, 2, 0] - p[:, 0, 0])
    )
    tris = tris[areas > 1e-6 * h * h]

    # Drop vertices that lost all their triangles to the clipping.
    used = np.zeros(pts.shape[0], dtype=bool)
    used[tris.ravel()] = True
    remap = -np.ones(pts.shape[0], dtype=np.int64)
    remap[used] = np.arange(int(used.sum()), dtype=np.int64)
    mesh = TriMesh(pts[used], remap[tris], name=name)

    # Native (ORI) order: a row-major spatial scan over ALL vertices.
    # This plays Triangle's output order: spatially semi-coherent (scan
    # rows) but aligned with no traversal, and — unlike emitting boundary
    # points first — it does not hand the identity ordering an artificial
    # cold-miss advantage from segregating boundary data.
    scan = np.lexsort((mesh.vertices[:, 0], mesh.vertices[:, 1]))
    mesh = mesh.permute(scan)

    # Perturb interior vertices so the initial quality is poor, varied,
    # and spatially structured (see repro.meshgen.fields).
    mesh = apply_quality_structure(
        mesh,
        rings,
        structure=quality_structure,
        strength=strength,
        spacing=h,
        rng=rng,
    )
    return validate_mesh(mesh)


def paper_suite(
    *,
    scale: float = 0.005,
    seed: int = 0,
    quality_structure: str = "ramp",
) -> dict[str, TriMesh]:
    """Generate all nine meshes, sized ``scale`` times the paper's counts.

    ``scale=1.0`` reproduces the paper's 300-400k-vertex meshes (slow in
    pure Python); the default keeps the suite around 1.5-2k vertices per
    mesh, which preserves every qualitative result while letting the full
    trace analysis run in seconds.
    """
    suite: dict[str, TriMesh] = {}
    for spec in PAPER_SUITE:
        target = max(200, int(round(spec.paper_vertices * scale)))
        suite[spec.label] = generate_domain_mesh(
            spec.name,
            target_vertices=target,
            seed=seed,
            quality_structure=quality_structure,
        )
    return suite
