"""Context-manager span tracer with an allocation-free disabled path.

A :class:`Span` measures one phase of work: wall time
(``perf_counter``), CPU time (``process_time``), an event count, free
attributes, and parent/child links.  Spans nest lexically through the
``with`` statement::

    with obs.span("pipeline.run_ordering", mesh=mesh.name):
        with obs.span("pipeline.smooth") as sp:
            ...
            sp.add_event(n)

The module keeps one process-global active tracer.  By default it is
:data:`NULL_TRACER`, whose ``span()`` returns a shared no-op singleton —
no Span object, no list append, no clock read — so instrumentation left
in hot paths costs one attribute lookup and one call when tracing is
off.  Instrumentation is phase-granular by design (per run, per
iteration, per socket — never per memory event), which keeps even the
*enabled* overhead small and the disabled overhead unmeasurable (gated
by ``benchmarks/test_obs_overhead.py``).

:func:`capture` installs a fresh tracer for a ``with`` block and
restores the previous one on exit; :meth:`Tracer.export` /
:meth:`Tracer.adopt` round-trip span trees through plain dicts, which is
how worker processes (sharded memsim, lab workers) ship their spans back
to the parent for merging.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from .metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry

__all__ = [
    "NULL_TRACER",
    "Span",
    "NullTracer",
    "Tracer",
    "capture",
    "get_tracer",
    "is_enabled",
    "span",
    "add",
    "gauge_set",
    "observe",
    "metrics",
]


class Span:
    """One timed, attributed phase of work (a node in the span tree)."""

    __slots__ = (
        "name",
        "attrs",
        "events",
        "children",
        "parent",
        "t0",
        "wall_s",
        "cpu_s",
        "_tracer",
        "_wall0",
        "_cpu0",
    )

    def __init__(self, name: str, tracer: "Tracer | None" = None, **attrs):
        self.name = name
        self.attrs: dict = attrs
        self.events = 0
        self.children: list[Span] = []
        self.parent: Span | None = None
        self.t0 = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._tracer = tracer
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def add_event(self, n: int = 1) -> None:
        """Count ``n`` events against this span."""
        self.events += int(n)

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self.t0 = time.time()
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if self._tracer is not None:
            self._tracer._pop(self)

    def to_dict(self) -> dict:
        """Recursive JSON-serialisable form (children nested)."""
        return {
            "name": self.name,
            "t0": self.t0,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "events": self.events,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span tree exported by :meth:`to_dict`."""
        sp = cls(data["name"])
        sp.t0 = float(data.get("t0", 0.0))
        sp.wall_s = float(data.get("wall_s", 0.0))
        sp.cpu_s = float(data.get("cpu_s", 0.0))
        sp.events = int(data.get("events", 0))
        sp.attrs = dict(data.get("attrs", {}))
        for child in data.get("children", ()):
            node = cls.from_dict(child)
            node.parent = sp
            sp.children.append(node)
        return sp


class _NullSpan:
    """Shared do-nothing span returned by the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def add_event(self, n: int = 1) -> None:
        """No-op."""

    def set(self, **attrs) -> None:
        """No-op."""


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op on shared
    singletons, so instrumentation costs nothing when tracing is off."""

    enabled = False
    metrics: NullRegistry = NULL_REGISTRY

    def span(self, name: str, **attrs) -> _NullSpan:
        """Return the shared no-op span."""
        return NULL_SPAN

    def export(self) -> list[dict]:
        """No spans to export."""
        return []

    def adopt(self, span_dicts, parent=None) -> None:
        """Discard (disabled tracer keeps no state)."""


NULL_TRACER = NullTracer()


class Tracer:
    """Collects a forest of spans plus a metrics registry."""

    enabled = True

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.roots: list[Span] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._stack: list[Span] = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None at the top level."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attrs) -> Span:
        """A new span to be entered with ``with``; parented under the
        currently open span at ``__enter__`` time."""
        return Span(name, tracer=self, **attrs)

    def _push(self, sp: Span) -> None:
        parent = self.current
        sp.parent = parent
        if parent is not None:
            parent.children.append(sp)
        else:
            self.roots.append(sp)
        self._stack.append(sp)

    def _pop(self, sp: Span) -> None:
        if self._stack and self._stack[-1] is sp:
            self._stack.pop()

    def export(self) -> list[dict]:
        """The root spans as plain dicts (for JSONL / cross-process)."""
        return [sp.to_dict() for sp in self.roots]

    def adopt(self, span_dicts, parent: Span | None = None) -> None:
        """Attach exported span dicts (e.g. from a worker process) as
        children of ``parent`` (default: the currently open span, else
        as new roots)."""
        parent = parent if parent is not None else self.current
        for data in span_dicts:
            sp = Span.from_dict(data)
            sp.parent = parent
            if parent is not None:
                parent.children.append(sp)
            else:
                self.roots.append(sp)


# ---------------------------------------------------------------------------
# Process-global active tracer + convenience forwarding helpers
# ---------------------------------------------------------------------------
_ACTIVE: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The currently active tracer (the disabled one by default)."""
    return _ACTIVE


def is_enabled() -> bool:
    """True when a real tracer is collecting."""
    return _ACTIVE.enabled


def span(name: str, **attrs):
    """``get_tracer().span(...)`` — the standard instrumentation call."""
    return _ACTIVE.span(name, **attrs)


def add(name: str, n: int = 1) -> None:
    """Increment counter ``name`` by ``n`` when tracing is enabled."""
    t = _ACTIVE
    if t.enabled:
        t.metrics.counter(name).add(n)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` when tracing is enabled."""
    t = _ACTIVE
    if t.enabled:
        t.metrics.gauge(name).set(value)


def observe(name: str, values, edges=None) -> None:
    """Feed values into histogram ``name`` when tracing is enabled."""
    t = _ACTIVE
    if t.enabled:
        if edges is None:
            t.metrics.histogram(name).observe(values)
        else:
            t.metrics.histogram(name, edges).observe(values)


def metrics() -> MetricsRegistry | NullRegistry:
    """The active tracer's metrics registry."""
    return _ACTIVE.metrics


@contextmanager
def capture(
    tracer: Tracer | None = None,
) -> Iterator[Tracer]:
    """Install a fresh (or given) tracer for the duration of the block.

    The previous tracer — usually the disabled singleton — is restored
    on exit, exception or not, so captures nest safely.
    """
    global _ACTIVE
    previous = _ACTIVE
    installed = tracer if tracer is not None else Tracer()
    _ACTIVE = installed
    try:
        yield installed
    finally:
        _ACTIVE = previous
