"""Exporters: JSONL span logs, flat ``metrics.json``, text span trees.

Three formats, all derived from the plain-dict form produced by
:meth:`repro.obs.tracer.Tracer.export` / :meth:`Span.to_dict`:

* :func:`write_spans_jsonl` — one JSON object per line, each span
  flattened with a stable ``id``/``parent`` pair (depth-first
  numbering), so streams concatenate and stream-process naturally.
  ``span_rows`` is the in-memory version.
* :func:`write_metrics_json` — one flat JSON document from a
  :meth:`MetricsRegistry.snapshot` (counters, gauges, histograms).
* :func:`format_spans` — an indented human-readable tree with wall/CPU
  durations and event counts, used by the CLI to summarise a traced run.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "format_spans",
    "span_rows",
    "write_metrics_json",
    "write_spans_jsonl",
]


def span_rows(span_dicts: list[dict]) -> list[dict]:
    """Flatten nested span dicts into rows with ``id``/``parent`` links.

    Ids are assigned depth-first in tree order, roots have
    ``parent=None``; the nested ``children`` lists are dropped.
    """
    rows: list[dict] = []

    def walk(node: dict, parent_id: int | None) -> None:
        row = {k: v for k, v in node.items() if k != "children"}
        row["id"] = len(rows)
        row["parent"] = parent_id
        rows.append(row)
        for child in node.get("children", ()):
            walk(child, row["id"])

    for root in span_dicts:
        walk(root, None)
    return rows


def write_spans_jsonl(path: str | Path, span_dicts: list[dict]) -> Path:
    """Write flattened span rows as JSONL; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for row in span_rows(span_dicts):
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def read_spans_jsonl(path: str | Path) -> list[dict]:
    """Parse a span JSONL file back into flat rows (file order)."""
    rows = []
    for raw in Path(path).read_text().splitlines():
        raw = raw.strip()
        if raw:
            rows.append(json.loads(raw))
    return rows


def write_metrics_json(path: str | Path, snapshot: dict) -> Path:
    """Write a metrics snapshot as one flat JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def format_spans(span_dicts: list[dict], *, max_depth: int | None = None) -> str:
    """Indented text rendering of a span forest (for CLI summaries)."""
    lines: list[str] = []

    def walk(node: dict, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        events = node.get("events", 0)
        suffix = f" events={events}" if events else ""
        lines.append(
            f"{'  ' * depth}{node['name']}: "
            f"wall {node.get('wall_s', 0.0) * 1e3:.2f} ms, "
            f"cpu {node.get('cpu_s', 0.0) * 1e3:.2f} ms{suffix}"
        )
        for child in node.get("children", ()):
            walk(child, depth + 1)

    for root in span_dicts:
        walk(root, 0)
    return "\n".join(lines)
