"""``repro.obs`` — lightweight tracing + metrics for every hot path.

The observability layer every pipeline stage reports through:

* :mod:`~repro.obs.tracer` — nested context-manager spans (wall/CPU
  time, event counts, parent links) with a process-global active tracer
  whose disabled default is allocation-free;
* :mod:`~repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms (reuse-distance and wavefront-width distributions are
  captured live during smoothing and simulation);
* :mod:`~repro.obs.export` — JSONL span logs, flat ``metrics.json`` and
  text span trees, surfaced as ``repro-lms analyze --trace-out`` and
  ``repro-lms lab export --with-spans``.

Instrumented code calls ``obs.span(...)`` / ``obs.add(...)`` /
``obs.observe(...)`` unconditionally; nothing is recorded (and nothing
is allocated) until a tracer is installed with :func:`capture` — or
:func:`activated`, which installs one when a
:class:`repro.config.ObsConfig` asks for it and exports to its
configured paths on exit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .export import (
    format_spans,
    read_spans_jsonl,
    span_rows,
    write_metrics_json,
    write_spans_jsonl,
)
from .metrics import (
    NULL_REGISTRY,
    POW2_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    add,
    capture,
    gauge_set,
    get_tracer,
    is_enabled,
    metrics,
    observe,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "POW2_EDGES",
    "Span",
    "Tracer",
    "activated",
    "add",
    "capture",
    "format_spans",
    "gauge_set",
    "get_tracer",
    "is_enabled",
    "metrics",
    "observe",
    "read_spans_jsonl",
    "span",
    "span_rows",
    "write_metrics_json",
    "write_spans_jsonl",
]


@contextmanager
def activated(obs_cfg) -> Iterator[Tracer | NullTracer]:
    """Honour the ``obs`` flags of a :class:`repro.config.RunConfig`.

    If ``obs_cfg.enabled`` is set and no tracer is currently collecting,
    install a fresh one for the block and, on exit, export the span log
    and metrics snapshot to ``obs_cfg.trace_path`` /
    ``obs_cfg.metrics_path`` (when given).  If tracing is already active
    — e.g. the CLI captured around the whole command — or the config
    does not ask for it, the block runs under the ambient tracer and
    nothing is exported here.
    """
    if obs_cfg is None or not getattr(obs_cfg, "enabled", False) or is_enabled():
        yield get_tracer()
        return
    with capture() as tracer:
        try:
            yield tracer
        finally:
            if obs_cfg.trace_path:
                write_spans_jsonl(obs_cfg.trace_path, tracer.export())
            if obs_cfg.metrics_path:
                write_metrics_json(
                    obs_cfg.metrics_path, tracer.metrics.snapshot()
                )
