"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the numeric half of :mod:`repro.obs` (spans are the
temporal half).  Instruments are created on first use and accumulate for
the lifetime of the tracer that owns the registry:

* :class:`Counter` — monotonically increasing integer (cache hits,
  vertices smoothed, trace events).
* :class:`Gauge` — last-written float (convergence quality, ratios).
* :class:`Histogram` — fixed-bucket distribution with vectorized
  ``observe`` (reuse distances, wavefront widths).  Buckets are defined
  by a sorted tuple of inclusive upper edges plus one overflow bucket,
  so two histograms over the same edges merge by adding counts —
  which is how per-process shard metrics fold into the parent registry.

Everything serialises to plain JSON via :meth:`MetricsRegistry.snapshot`
and re-merges via :meth:`MetricsRegistry.merge`, the mechanism the
sharded memsim replay and the lab workers use to ship metrics across
process boundaries.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "POW2_EDGES",
]

#: Default histogram edges: powers of two up to 2^30 (inclusive upper
#: bounds).  Reuse distances and wavefront widths are both heavy-tailed
#: count distributions, so log-spaced buckets resolve every regime.
POW2_EDGES: tuple[int, ...] = tuple(2**k for k in range(31))


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (must be >= 0)."""
        self.value += int(n)


class Gauge:
    """Last-value-wins float gauge."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with an overflow bucket.

    ``edges`` are inclusive upper bounds in increasing order; a value
    ``v`` lands in the first bucket with ``v <= edge``, values beyond
    the last edge land in the overflow bucket (``counts[-1]``).
    """

    __slots__ = ("name", "edges", "counts", "total")

    def __init__(self, name: str, edges: tuple[float, ...] = POW2_EDGES):
        if len(edges) == 0 or any(
            edges[i] >= edges[i + 1] for i in range(len(edges) - 1)
        ):
            raise ValueError("edges must be non-empty and strictly increasing")
        self.name = name
        self.edges = tuple(edges)
        self.counts = np.zeros(len(edges) + 1, dtype=np.int64)
        self.total = 0

    def observe(self, values) -> None:
        """Bucket an array of values (vectorized)."""
        arr = np.asarray(values)
        if arr.size == 0:
            return
        idx = np.searchsorted(self.edges, arr.ravel(), side="left")
        self.counts += np.bincount(idx, minlength=self.counts.size)
        self.total += arr.size

    def observe_one(self, value: float) -> None:
        """Bucket a single value."""
        idx = int(np.searchsorted(self.edges, value, side="left"))
        self.counts[idx] += 1
        self.total += 1

    def as_dict(self) -> dict:
        """JSON-serialisable form (edges, counts, total)."""
        return {
            "edges": list(self.edges),
            "counts": [int(c) for c in self.counts],
            "total": int(self.total),
        }


class MetricsRegistry:
    """Create-on-first-use registry of named instruments."""

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created empty on first use)."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, edges: tuple[float, ...] = POW2_EDGES
    ) -> Histogram:
        """The histogram named ``name`` (edges fixed on first use)."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, edges)
        return h

    def snapshot(self) -> dict:
        """Flat JSON-serialisable view of every instrument."""
        return {
            "counters": {n: int(c.value) for n, c in sorted(self.counters.items())},
            "gauges": {n: float(g.value) for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self.histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry: counters and histogram counts add, gauges last-write-win."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).add(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, data in snapshot.get("histograms", {}).items():
            h = self.histogram(name, tuple(data["edges"]))
            if tuple(data["edges"]) != h.edges:
                raise ValueError(
                    f"histogram {name!r} merged with mismatched edges"
                )
            h.counts += np.asarray(data["counts"], dtype=np.int64)
            h.total += int(data["total"])


#: Shared do-nothing instruments backing the disabled tracer, so code
#: holding a direct instrument reference stays a no-op when tracing is
#: off.
class _NullInstrument:
    """No-op stand-in for any instrument on the disabled tracer."""

    __slots__ = ()

    def add(self, n: int = 1) -> None:  # noqa: D102 - no-op
        pass

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def observe(self, values) -> None:  # noqa: D102 - no-op
        pass

    def observe_one(self, value: float) -> None:  # noqa: D102 - no-op
        pass


NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Registry of the disabled tracer: hands out the shared no-op
    instrument and snapshots to an empty dict."""

    def counter(self, name: str) -> _NullInstrument:
        """No-op counter."""
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        """No-op gauge."""
        return NULL_INSTRUMENT

    def histogram(self, name: str, edges=POW2_EDGES) -> _NullInstrument:
        """No-op histogram."""
        return NULL_INSTRUMENT

    def snapshot(self) -> dict:
        """Empty snapshot."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: dict) -> None:
        """Discard (disabled tracer keeps no state)."""


NULL_REGISTRY = NullRegistry()
