"""Laplacian mesh smoothing: kernels, traversals, trace generation."""

from .laplacian import (
    DEFAULT_CONVERGENCE_TOL,
    LaplacianSmoother,
    SmoothingResult,
    laplacian_smooth,
    smooth_iteration_jacobi,
)
from .trace import accesses_per_vertex, append_smooth_accesses, trace_for_traversal
from .traversal import TRAVERSALS, greedy_traversal, make_traversal, storage_traversal

__all__ = [
    "DEFAULT_CONVERGENCE_TOL",
    "LaplacianSmoother",
    "SmoothingResult",
    "TRAVERSALS",
    "accesses_per_vertex",
    "append_smooth_accesses",
    "greedy_traversal",
    "laplacian_smooth",
    "make_traversal",
    "smooth_iteration_jacobi",
    "storage_traversal",
    "trace_for_traversal",
]
