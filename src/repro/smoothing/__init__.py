"""Laplacian mesh smoothing: kernels, traversals, trace generation."""

from .laplacian import (
    DEFAULT_CONVERGENCE_TOL,
    ENGINES,
    LaplacianSmoother,
    SmoothingResult,
    laplacian_smooth,
    smooth_iteration_jacobi,
)
from .trace import (
    accesses_per_vertex,
    append_smooth_accesses,
    append_smooth_accesses_batch,
    trace_for_traversal,
)
from .traversal import TRAVERSALS, greedy_traversal, make_traversal, storage_traversal
from .vectorized import WavefrontPlan, csr_segment_mean, smooth_wavefronts

__all__ = [
    "DEFAULT_CONVERGENCE_TOL",
    "ENGINES",
    "LaplacianSmoother",
    "SmoothingResult",
    "TRAVERSALS",
    "WavefrontPlan",
    "accesses_per_vertex",
    "append_smooth_accesses",
    "append_smooth_accesses_batch",
    "csr_segment_mean",
    "greedy_traversal",
    "laplacian_smooth",
    "make_traversal",
    "smooth_iteration_jacobi",
    "smooth_wavefronts",
    "storage_traversal",
    "trace_for_traversal",
]
