"""Laplacian mesh smoothing (Algorithm 1 + Equation 1 of the paper).

Each smoothing step replaces an interior vertex by the centroid of its
neighbors. The driver iterates until the global quality (mean per-vertex
edge-length ratio) improves by less than the convergence criterion —
the paper uses 5e-6 — or a maximum iteration count is reached.

Two update disciplines are provided:

``gauss-seidel`` (default)
    In-place sequential updates, matching the real Mesquite-style kernel
    whose access trace the paper studies. The traversal policy
    (``storage`` or ``greedy``; see :mod:`repro.smoothing.traversal`)
    decides the visit order.
``jacobi``
    Fully vectorized sweep from the previous iterate; used by the
    wall-clock parallel harness where all threads update concurrently.

When ``record_trace`` is on, the smoother emits the exact logical access
trace (see :mod:`repro.smoothing.trace`) that the memory simulators
consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..config import RunConfig, resolve_config
from ..mesh import TriMesh
from ..memsim.trace import AccessTrace, TraceBuilder
from ..quality import DEFAULT_RANK_PASSES, global_quality, patch_quality, vertex_quality
from .trace import (
    append_smooth_accesses,
    append_smooth_accesses_batch,
    iter_traversal_chunks,
)
from .traversal import make_traversal
from .vectorized import WavefrontPlan

__all__ = [
    "DEFAULT_CONVERGENCE_TOL",
    "ENGINES",
    "SmoothingResult",
    "LaplacianSmoother",
    "smooth_iteration_jacobi",
    "laplacian_smooth",
]

#: Execution engines of the smoother. ``reference`` is the scalar
#: per-vertex loop the paper's access model is written against;
#: ``vectorized`` performs the same updates as NumPy wavefront batches
#: (differentially tested equivalent, ``rtol=1e-12``).
ENGINES = ("reference", "vectorized")

#: The paper's quality convergence criterion (Section 5.1).
DEFAULT_CONVERGENCE_TOL = 5e-6


@dataclass
class SmoothingResult:
    """Outcome of a smoothing run."""

    mesh: TriMesh
    iterations: int
    quality_history: list[float]
    converged: bool
    traversals: list[np.ndarray] = field(default_factory=list)
    trace: AccessTrace | None = None
    wall_time_s: float = 0.0
    #: With culling: number of active (smoothed) vertices per iteration.
    active_counts: list[int] = field(default_factory=list)

    @property
    def initial_quality(self) -> float:
        return self.quality_history[0]

    @property
    def final_quality(self) -> float:
        return self.quality_history[-1]

    @property
    def improvement(self) -> float:
        return self.final_quality - self.initial_quality


def smooth_iteration_jacobi(
    coords: np.ndarray,
    xadj: np.ndarray,
    adjncy: np.ndarray,
    interior_mask: np.ndarray,
) -> np.ndarray:
    """One vectorized Jacobi sweep: every interior vertex to its
    neighbor centroid, all computed from the input ``coords``.

    The neighbor gather ``coords[adjncy]`` is the memory-bound hot spot;
    its real-hardware locality is exactly what vertex reorderings
    improve, which makes this kernel the wall-clock counterpart of the
    simulated experiments.
    """
    deg = np.diff(xadj)
    if adjncy.size == 0:
        return coords.copy()
    gathered = coords[adjncy]
    # np.add.reduceat mis-handles empty rows (it repeats the element at
    # the boundary) and rejects offsets == len(adjncy), so clip the
    # offsets and zero the empty rows afterwards.
    offsets = np.minimum(xadj[:-1], adjncy.size - 1)
    sums = np.add.reduceat(gathered, offsets, axis=0)
    empty = deg == 0
    if empty.any():
        sums[empty] = 0.0
    out = coords.copy()
    safe_deg = np.where(deg == 0, 1, deg)[:, None]
    centroids = sums / safe_deg
    move = interior_mask & (deg > 0)
    out[move] = centroids[move]
    return out


class LaplacianSmoother:
    """Configurable Laplacian smoothing driver.

    Parameters
    ----------
    traversal:
        ``"greedy"`` (paper's quality-driven order, the default) or
        ``"storage"``.
    update:
        ``"gauss-seidel"`` or ``"jacobi"``.
    tol:
        Convergence criterion on global-quality improvement.
    max_iterations:
        Safety cap (Algorithm 1's note that the goal quality might never
        be reached).
    greedy_qualities:
        ``"current"`` re-ranks vertices from the current geometry each
        iteration; ``"initial"`` keeps the first iteration's ranking
        (the paper conjectures access patterns are controlled by initial
        qualities — the ablation bench compares both).
    metric:
        Triangle quality metric name (see :mod:`repro.quality`).
    rank_passes:
        Patch-widening passes applied to the quality signal that *ranks*
        vertices for the greedy traversal (see
        :func:`repro.quality.patch_quality`); the convergence criterion
        always uses the raw global quality.
    config:
        A :class:`repro.config.RunConfig`; its ``engine`` field selects
        the execution engine (the bare ``engine=`` keyword is a
        deprecated shim for it).
    record_trace:
        Emit the logical access trace alongside the numeric result.
    culling:
        Mesquite-style patch culling: after each iteration, a vertex
        stays *active* only while it or one of its neighbors moved more
        than ``cull_tol`` (an absolute distance; when ``None`` it
        defaults to 5e-3 times the mesh's median edge length). Later
        iterations smooth only active vertices, so converged regions
        drop out of the working set — under a quality-sorted layout
        (RDR) the surviving active set is storage-contiguous, which is
        where culling and reordering compound (extension bench
        ``test_ext_culling``).
    cull_tol:
        Movement threshold for culling (see above).
    trace_sink:
        A :class:`repro.memsim.sink.TraceSink` receiving the access
        stream instead of the internal builder. The caller owns the
        sink: the smoother emits into it (honouring its
        ``burst_events`` bound by chunking each iteration's batch) but
        never closes it, and ``SmoothingResult.trace`` stays ``None``.
        This is how the fused/spill trace modes bound the events in
        flight. Implies trace emission regardless of ``record_trace``.
    engine:
        ``"reference"`` (scalar per-vertex loop) or ``"vectorized"``
        (NumPy wavefront batches; same traversals, same traces, same
        coordinates to ``rtol=1e-12`` — see
        :mod:`repro.smoothing.vectorized`).
    """

    def __init__(
        self,
        *,
        config: RunConfig | None = None,
        traversal: str = "greedy",
        update: str = "gauss-seidel",
        tol: float = DEFAULT_CONVERGENCE_TOL,
        max_iterations: int = 50,
        greedy_qualities: str = "current",
        metric: str = "edge_length_ratio",
        rank_passes: int = DEFAULT_RANK_PASSES,
        record_trace: bool = False,
        culling: bool = False,
        cull_tol: float | None = None,
        trace_sink=None,
        engine: str | None = None,
    ):
        config = resolve_config(config, engine=engine)
        if update not in ("gauss-seidel", "jacobi"):
            raise ValueError(f"unknown update discipline {update!r}")
        if greedy_qualities not in ("current", "initial"):
            raise ValueError(f"unknown greedy_qualities {greedy_qualities!r}")
        if culling and update != "gauss-seidel":
            raise ValueError("culling requires the gauss-seidel update")
        if config.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {config.engine!r}; choose from {ENGINES}"
            )
        self.config = config
        self.engine = config.engine
        self.traversal = traversal
        self.update = update
        self.tol = tol
        self.max_iterations = max_iterations
        self.greedy_qualities = greedy_qualities
        self.metric = metric
        self.rank_passes = rank_passes
        self.record_trace = record_trace
        self.culling = culling
        self.cull_tol = cull_tol
        self.trace_sink = trace_sink

    def smooth(self, mesh: TriMesh) -> SmoothingResult:
        """Run smoothing to convergence; the input mesh is not modified.

        When tracing is active, the run emits a ``smooth.run`` span with
        one ``smooth.iteration`` child per sweep, a
        ``smoothing.vertices_smoothed`` counter, and (vectorized engine)
        a live ``smoothing.wavefront_width`` histogram.
        """
        with obs.span(
            "smooth.run",
            mesh=mesh.name,
            engine=self.engine,
            backend=self.config.backend,
            traversal=self.traversal,
            update=self.update,
        ) as sp:
            result = self._smooth_impl(mesh)
            sp.set(iterations=result.iterations, converged=bool(result.converged))
            return result

    def _smooth_impl(self, mesh: TriMesh) -> SmoothingResult:
        t0 = time.perf_counter()
        g = mesh.adjacency
        xadj, adjncy = g.xadj, g.adjncy
        interior_mask = mesh.interior_mask
        coords = mesh.vertices.copy()
        work = mesh.with_vertices(coords)

        qualities = vertex_quality(work, metric=self.metric)
        history = [global_quality(work, vertex_values=qualities)]
        initial_qualities = qualities

        if self.trace_sink is not None:
            builder = self.trace_sink
        else:
            builder = TraceBuilder() if self.record_trace else None
        # Sinks with a burst bound get each iteration's batch in chunks
        # so the event columns in flight stay bounded (fused/spill).
        burst = getattr(builder, "burst_events", None)

        def emit_batch(seq: np.ndarray) -> None:
            if burst is None:
                append_smooth_accesses_batch(builder, xadj, adjncy, seq)
            else:
                for chunk in iter_traversal_chunks(xadj, seq, burst):
                    append_smooth_accesses_batch(builder, xadj, adjncy, chunk)

        traversals: list[np.ndarray] = []
        active_counts: list[int] = []
        converged = False
        iterations = 0

        cull_tol = self.cull_tol
        # Wavefront schedule of the vectorized engine, cached across
        # iterations that reuse an identical traversal sequence (storage
        # traversals and greedy_qualities="initial" without culling
        # never change it).
        wf_seq: np.ndarray | None = None
        wf_plan: WavefrontPlan | None = None
        active: np.ndarray | None = None
        if self.culling:
            if cull_tol is None:
                edges = mesh.edges()
                median_edge = (
                    float(
                        np.median(
                            np.linalg.norm(
                                coords[edges[:, 0]] - coords[edges[:, 1]], axis=1
                            )
                        )
                    )
                    if edges.size
                    else 1.0
                )
                cull_tol = 5e-3 * median_edge
            active = mesh.interior_vertices()

        for _ in range(self.max_iterations):
            if self.culling and active is not None and active.size == 0:
                converged = True
                break
            rank_base = (
                initial_qualities
                if self.greedy_qualities == "initial"
                else qualities
            )
            rank_q = (
                patch_quality(work, passes=self.rank_passes, base=rank_base)
                if self.traversal == "greedy" and self.rank_passes
                else rank_base
            )
            seq = make_traversal(self.traversal, work, rank_q, subset=active)
            traversals.append(seq)
            active_counts.append(int(seq.size))
            if builder is not None:
                builder.begin_iteration()

            moved: np.ndarray | None = (
                np.zeros(mesh.num_vertices, dtype=bool) if self.culling else None
            )
            with obs.span(
                "smooth.iteration", index=iterations, active=int(seq.size)
            ):
                obs.add("smoothing.vertices_smoothed", int(seq.size))
                if self.update == "jacobi":
                    coords = smooth_iteration_jacobi(
                        coords, xadj, adjncy, interior_mask
                    )
                    if builder is not None:
                        if self.engine == "vectorized":
                            emit_batch(seq)
                        else:
                            for v in seq.tolist():
                                append_smooth_accesses(builder, xadj, adjncy, v)
                elif self.engine == "vectorized":
                    if builder is not None:
                        emit_batch(seq)
                    if wf_seq is None or not np.array_equal(seq, wf_seq):
                        from ..parallel.scheduler import wavefront_schedule

                        wf_seq = seq
                        batched, offsets = wavefront_schedule(seq, xadj, adjncy)
                        obs.observe(
                            "smoothing.wavefront_width", np.diff(offsets)
                        )
                        wf_plan = WavefrontPlan(
                            xadj,
                            adjncy,
                            batched,
                            offsets,
                            backend=self.config.backend,
                        )
                    wf_plan.execute(coords, cull_tol=cull_tol, moved=moved)
                else:
                    for v in seq.tolist():
                        if builder is not None:
                            append_smooth_accesses(builder, xadj, adjncy, v)
                        lo, hi = xadj[v], xadj[v + 1]
                        if hi > lo:
                            new = coords[adjncy[lo:hi]].mean(axis=0)
                            if moved is not None and (
                                abs(new[0] - coords[v, 0])
                                + abs(new[1] - coords[v, 1])
                                > cull_tol
                            ):
                                moved[v] = True
                            coords[v] = new

            iterations += 1
            work = mesh.with_vertices(coords)
            qualities = vertex_quality(work, metric=self.metric)
            history.append(global_quality(work, vertex_values=qualities))
            if self.culling and moved is not None:
                # A vertex stays active while it or a neighbor moved.
                keep = moved.copy()
                src = np.repeat(
                    np.arange(mesh.num_vertices, dtype=np.int64),
                    np.diff(xadj),
                )
                neighbor_moved = np.zeros(mesh.num_vertices, dtype=bool)
                hit = moved[adjncy]
                np.logical_or.at(neighbor_moved, src[hit], True)
                keep |= neighbor_moved
                keep &= interior_mask
                active = np.flatnonzero(keep)
            if history[-1] - history[-2] < self.tol:
                converged = True
                break

        trace = None
        if self.trace_sink is not None:
            # External sink: label it, leave closing to the owner.
            set_meta = getattr(builder, "set_meta", None)
            if set_meta is not None:
                set_meta(
                    mesh=mesh.name,
                    traversal=self.traversal,
                    update=self.update,
                    iterations=iterations,
                )
        elif builder is not None:
            trace = builder.build(
                mesh=mesh.name,
                traversal=self.traversal,
                update=self.update,
                iterations=iterations,
            )
        return SmoothingResult(
            mesh=work,
            iterations=iterations,
            quality_history=history,
            converged=converged,
            traversals=traversals,
            trace=trace,
            wall_time_s=time.perf_counter() - t0,
            active_counts=active_counts,
        )


def laplacian_smooth(
    mesh: TriMesh, *, config: RunConfig | None = None, **kwargs
) -> SmoothingResult:
    """Convenience wrapper: ``LaplacianSmoother(**kwargs).smooth(mesh)``.

    The deprecated ``engine=`` keyword is resolved here (not in the
    smoother) so the warning points at the caller.
    """
    config = resolve_config(config, engine=kwargs.pop("engine", None))
    return LaplacianSmoother(config=config, **kwargs).smooth(mesh)
