"""The access model of one smoothing step, and trace generation.

Smoothing vertex ``v`` (Equation 1) touches, in order:

1. ``flags[v]``      — is the vertex free to move?
2. ``xadj[v]``, ``xadj[v+1]`` — locate the neighbor list,
3. ``adjncy[xadj[v] : xadj[v+1]]`` — the neighbor ids,
4. ``coords[w]`` for each neighbor ``w`` — the positions averaged,
5. ``coords[v]`` (write) — the new position.

The trace of a traversal depends only on the mesh *connectivity* and the
vertex sequence — never on coordinate values — so traces can be produced
without running the numerical kernel (used heavily by the benchmarks)
and are bit-identical to the ones the instrumented smoother records.
"""

from __future__ import annotations

import numpy as np

from ..mesh import TriMesh
from ..memsim.trace import ARRAY_IDS, AccessTrace, TraceBuilder

__all__ = [
    "append_smooth_accesses",
    "append_smooth_accesses_batch",
    "iter_traversal_chunks",
    "trace_for_traversal",
    "traversal_events",
    "accesses_per_vertex",
]


def append_smooth_accesses(
    builder: TraceBuilder,
    xadj: np.ndarray,
    adjncy: np.ndarray,
    v: int,
) -> None:
    """Record the accesses of smoothing vertex ``v`` into ``builder``."""
    lo = int(xadj[v])
    hi = int(xadj[v + 1])
    builder.append("flags", v)
    builder.append("xadj", np.array([v, v + 1], dtype=np.int64))
    if hi > lo:
        slots = np.arange(lo, hi, dtype=np.int64)
        builder.append("adjncy", slots)
        builder.append("coords", adjncy[lo:hi])
    builder.append("coords", v, write=True)


def append_smooth_accesses_batch(
    builder: TraceBuilder,
    xadj: np.ndarray,
    adjncy: np.ndarray,
    seq: np.ndarray,
) -> None:
    """Record a whole traversal's accesses in one vectorized pass.

    Produces the byte-identical event stream of calling
    :func:`append_smooth_accesses` for each vertex of ``seq`` in order
    (the golden-trace suite pins this), but builds the interleaved
    columns with NumPy scatter writes instead of a per-vertex loop.
    """
    seq = np.asarray(seq, dtype=np.int64)
    if seq.size == 0:
        return
    starts = xadj[seq]
    deg = xadj[seq + 1] - starts
    block = 4 + 2 * deg  # events per vertex: 3 reads, neighbors, 1 write
    bs = np.zeros(seq.size, dtype=np.int64)
    np.cumsum(block[:-1], out=bs[1:])
    total = int(block.sum())
    alloc = getattr(builder, "alloc_columns", None)
    if alloc is not None:
        # Scatter straight into the builder's reserved buffer region
        # (zero-copy for the growth-buffer TraceBuilder; sinks without a
        # reserved region hand back temporaries and copy on commit).
        ids, idx, wr, commit = alloc(total)
    else:
        ids = np.empty(total, dtype=np.uint8)
        idx = np.empty(total, dtype=np.int64)
        wr = np.zeros(total, dtype=bool)
        commit = None
    ids[bs] = ARRAY_IDS["flags"]
    idx[bs] = seq
    ids[bs + 1] = ARRAY_IDS["xadj"]
    idx[bs + 1] = seq
    ids[bs + 2] = ARRAY_IDS["xadj"]
    idx[bs + 2] = seq + 1
    nbr_total = int(deg.sum())
    if nbr_total:
        row_ends = np.cumsum(deg)
        offs = np.arange(nbr_total, dtype=np.int64) - np.repeat(
            row_ends - deg, deg
        )
        slots = np.repeat(starts, deg) + offs
        at = np.repeat(bs, deg) + 3 + offs
        ids[at] = ARRAY_IDS["adjncy"]
        idx[at] = slots
        at = at + np.repeat(deg, deg)
        ids[at] = ARRAY_IDS["coords"]
        idx[at] = adjncy[slots]
    last = bs + 3 + 2 * deg
    ids[last] = ARRAY_IDS["coords"]
    idx[last] = seq
    wr[last] = True
    if commit is not None:
        commit()
    else:
        builder.append_columns(ids, idx, wr)


def traversal_events(xadj: np.ndarray, seq: np.ndarray) -> int:
    """Total trace events one sweep over ``seq`` emits (4 + 2*deg each)."""
    seq = np.asarray(seq, dtype=np.int64)
    if seq.size == 0:
        return 0
    return int((4 + 2 * (xadj[seq + 1] - xadj[seq])).sum())


def iter_traversal_chunks(
    xadj: np.ndarray, seq: np.ndarray, max_events: int
):
    """Split ``seq`` into prefixes of at most ``max_events`` trace events.

    The concatenated chunks reproduce ``seq`` exactly, so emitting each
    chunk through :func:`append_smooth_accesses_batch` yields the
    byte-identical event stream of one unchunked call — this is how the
    fused pipeline bounds the event columns in flight. A single vertex
    whose burst alone exceeds ``max_events`` forms its own chunk.
    """
    if max_events < 1:
        raise ValueError("max_events must be >= 1")
    seq = np.asarray(seq, dtype=np.int64)
    if seq.size == 0:
        return
    ends = np.cumsum(4 + 2 * (xadj[seq + 1] - xadj[seq]))
    lo = 0
    while lo < seq.size:
        base = int(ends[lo - 1]) if lo else 0
        hi = int(np.searchsorted(ends, base + max_events, side="right"))
        hi = max(hi, lo + 1)
        yield seq[lo:hi]
        lo = hi


def accesses_per_vertex(mesh: TriMesh, v: int) -> int:
    """Number of trace events generated by smoothing vertex ``v``."""
    g = mesh.adjacency
    deg = int(g.xadj[v + 1] - g.xadj[v])
    return 1 + 2 + 2 * deg + 1


def trace_for_traversal(
    mesh: TriMesh,
    traversals: list[np.ndarray] | np.ndarray,
    **meta,
) -> AccessTrace:
    """Build the full access trace of one or more smoothing iterations.

    Parameters
    ----------
    traversals:
        One vertex sequence per iteration (a single array counts as one
        iteration).
    meta:
        Labels stored on the trace (mesh/ordering names, ...).
    """
    if isinstance(traversals, np.ndarray):
        traversals = [traversals]
    g = mesh.adjacency
    xadj, adjncy = g.xadj, g.adjncy
    tb = TraceBuilder()
    for seq in traversals:
        tb.begin_iteration()
        append_smooth_accesses_batch(tb, xadj, adjncy, seq)
    return tb.build(mesh=mesh.name, **meta)
