"""Traversal orders of the Laplacian smoother.

The smoother visits interior vertices once per iteration; *in which
order* is the traversal policy:

``storage``
    Algorithm 1 read literally: interior vertices in storage order.
``greedy``
    The quality-driven traversal Section 4.2 describes (and RDR
    mirrors): start at the worst-quality interior vertex; after
    smoothing a vertex, continue with its worst-quality unvisited
    interior neighbor; when none remains, jump to the globally
    worst-quality unvisited interior vertex.

The greedy traversal depends only on the mesh connectivity and the
per-vertex qualities — not on the storage order — which is precisely why
reorderings change *where* the accesses land without changing *what* is
accessed (Figure 5).
"""

from __future__ import annotations

import numpy as np

from ..mesh import TriMesh

__all__ = ["storage_traversal", "greedy_traversal", "make_traversal", "TRAVERSALS"]


def storage_traversal(
    mesh: TriMesh,
    qualities: np.ndarray | None = None,
    *,
    subset: np.ndarray | None = None,
) -> np.ndarray:
    """Interior vertices in increasing storage order (Algorithm 1)."""
    verts = mesh.interior_vertices() if subset is None else np.sort(subset)
    return np.asarray(verts, dtype=np.int64)


def greedy_traversal(
    mesh: TriMesh,
    qualities: np.ndarray,
    *,
    subset: np.ndarray | None = None,
) -> np.ndarray:
    """Quality-greedy traversal (worst-first with neighbor chaining).

    Parameters
    ----------
    qualities:
        Per-vertex quality; lower means "smooth me first".
    subset:
        Restrict the traversal to these vertices (used by the static
        partitioner for parallel runs). Chains only follow neighbors
        inside the subset, like a thread that only owns its block.
    """
    n = mesh.num_vertices
    qualities = np.asarray(qualities, dtype=np.float64)
    if qualities.shape != (n,):
        raise ValueError(f"qualities must have shape ({n},)")
    g = mesh.adjacency
    xadj, adjncy = g.xadj, g.adjncy

    eligible = np.zeros(n, dtype=bool)
    if subset is None:
        eligible[mesh.interior_mask] = True
    else:
        eligible[np.asarray(subset, dtype=np.int64)] = True
        eligible &= mesh.interior_mask

    todo = np.flatnonzero(eligible)
    order = np.empty(todo.size, dtype=np.int64)
    seeds = todo[np.argsort(qualities[todo], kind="stable")]
    visited = np.zeros(n, dtype=bool)
    pos = 0
    for s in seeds:
        if visited[s]:
            continue
        v = int(s)
        while True:
            visited[v] = True
            order[pos] = v
            pos += 1
            nbrs = adjncy[xadj[v] : xadj[v + 1]]
            cand = nbrs[eligible[nbrs] & ~visited[nbrs]]
            if cand.size == 0:
                break
            v = int(cand[np.argmin(qualities[cand])])
    assert pos == order.size
    return order


TRAVERSALS = {"storage": storage_traversal, "greedy": greedy_traversal}


def make_traversal(
    name: str,
    mesh: TriMesh,
    qualities: np.ndarray | None = None,
    *,
    subset: np.ndarray | None = None,
) -> np.ndarray:
    """Dispatch on traversal name (``"storage"`` or ``"greedy"``)."""
    if name == "storage":
        return storage_traversal(mesh, qualities, subset=subset)
    if name == "greedy":
        if qualities is None:
            raise ValueError("greedy traversal requires qualities")
        return greedy_traversal(mesh, qualities, subset=subset)
    raise KeyError(f"unknown traversal {name!r}; choose from {sorted(TRAVERSALS)}")
