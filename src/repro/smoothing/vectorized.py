"""The vectorized smoothing engine (``engine="vectorized"``).

The reference engine smooths one vertex at a time in interpreted Python;
this module performs the same updates as NumPy batch operations:

* :func:`csr_segment_mean` — the neighbor-centroid of many vertices at
  once: one fancy-indexed gather of all neighbor coordinates followed by
  a ``np.add.reduceat`` segment sum.
* :class:`WavefrontPlan` / :func:`smooth_wavefronts` — a Gauss-Seidel
  sweep executed as a series of wavefront batches (see
  :func:`repro.parallel.scheduler.wavefront_schedule`). Levels are
  processed in order and each level is one segment-mean batch; because
  every data dependency of the sequential sweep points from a lower
  level to a higher one, the values produced are exactly the sequential
  sweep's (the differential suite pins this at ``rtol=1e-12``; on meshes
  whose vertex degrees stay below NumPy's pairwise-summation block the
  match is bitwise).

A :class:`WavefrontPlan` precomputes, per level, the flattened neighbor
gather indices and segment boundaries, so an iteration that reuses a
traversal (storage traversals, ``greedy_qualities="initial"``) costs
only gather + segment-sum + scatter per level. The Jacobi discipline
needs no scheduling — it is the single batch ``smooth_iteration_jacobi``
already used by the reference engine — so under ``engine="vectorized"``
only its trace recording changes (the batched builder of
:func:`repro.smoothing.trace.append_smooth_accesses_batch`).
"""

from __future__ import annotations

import numpy as np

from ..backend import ArrayBackend, get_backend

__all__ = ["csr_segment_mean", "smooth_wavefronts", "WavefrontPlan"]


def csr_segment_mean(
    coords: np.ndarray,
    xadj: np.ndarray,
    adjncy: np.ndarray,
    verts: np.ndarray,
) -> np.ndarray:
    """Neighbor centroid of each vertex in ``verts`` (all with degree > 0).

    Sums run left-to-right over each adjacency slice, matching the
    arithmetic of the reference kernel's per-vertex
    ``coords[adjncy[lo:hi]].mean(axis=0)``.
    """
    starts = xadj[verts]
    deg = xadj[verts + 1] - starts
    total = int(deg.sum())
    if total == 0:
        return np.empty((0, coords.shape[1]), dtype=coords.dtype)
    row_ends = np.cumsum(deg)
    offs = np.arange(total, dtype=np.int64) - np.repeat(row_ends - deg, deg)
    slots = np.repeat(starts, deg) + offs
    gathered = coords[adjncy[slots]]
    row_starts = row_ends - deg
    sums = np.add.reduceat(gathered, row_starts, axis=0)
    return sums / deg[:, None]


class WavefrontPlan:
    """Precompiled gather/scatter structure of one wavefront schedule.

    For each level the plan stores the updatable vertices (degree > 0),
    their concatenated neighbor ids, the segment starts delimiting each
    vertex's neighbors, and the per-vertex degree divisor — everything
    that does not depend on coordinate values. :meth:`execute` then
    performs one Gauss-Seidel sweep with three array operations per
    level.

    The plan is backend-aware (:mod:`repro.backend`): level arrays are
    moved into the backend's memory space once at build time, and each
    :meth:`execute` makes a single host round-trip per sweep (coords in,
    coords out) so trace construction and convergence checks stay on
    host.  Under the default numpy backend both transfers are zero-copy
    and the sweep runs the identical op stream the direct-numpy engine
    ran (parity gated < 10% in ``benchmarks/test_backend_parity.py``).
    """

    def __init__(
        self,
        xadj: np.ndarray,
        adjncy: np.ndarray,
        batched: np.ndarray,
        offsets: np.ndarray,
        *,
        backend: ArrayBackend | str | None = None,
    ):
        if backend is None or isinstance(backend, str):
            backend = get_backend(backend or "numpy")
        self.backend = backend
        xb = backend
        self.levels: list[tuple] = []
        for k in range(offsets.size - 1):
            level = batched[offsets[k] : offsets[k + 1]]
            starts = xadj[level]
            deg = xadj[level + 1] - starts
            keep = deg > 0
            level, starts, deg = level[keep], starts[keep], deg[keep]
            if level.size == 0:
                continue
            row_ends = np.cumsum(deg)
            offs = np.arange(int(row_ends[-1]), dtype=np.int64) - np.repeat(
                row_ends - deg, deg
            )
            nbrs = adjncy[np.repeat(starts, deg) + offs]
            self.levels.append(
                (
                    xb.asarray(np.ascontiguousarray(level, dtype=np.int64)),
                    xb.asarray(np.ascontiguousarray(nbrs, dtype=np.int64)),
                    xb.asarray(row_ends - deg),
                    xb.asarray(deg[:, None].astype(np.float64)),
                )
            )

    def execute(
        self,
        coords: np.ndarray,
        *,
        cull_tol: float | None = None,
        moved: np.ndarray | None = None,
    ) -> None:
        """In-place Gauss-Seidel sweep over the planned levels.

        When ``moved`` is given (culling), vertices whose L1
        displacement exceeds ``cull_tol`` are flagged, mirroring the
        reference engine's test.
        """
        xb = self.backend
        dev = xb.asarray(coords)
        for level, nbrs, row_starts, divisor in self.levels:
            sums = xb.reduceat(dev[nbrs], row_starts)
            centroids = sums / divisor
            if moved is not None:
                shift = abs(centroids - dev[level]).sum(axis=1)
                moved[xb.to_numpy(level[shift > cull_tol])] = True
            dev[level] = centroids
        out = xb.to_numpy(dev)
        if out is not coords:
            coords[:] = out


def smooth_wavefronts(
    coords: np.ndarray,
    xadj: np.ndarray,
    adjncy: np.ndarray,
    batched: np.ndarray,
    offsets: np.ndarray,
    *,
    cull_tol: float | None = None,
    moved: np.ndarray | None = None,
    backend: ArrayBackend | str | None = None,
) -> None:
    """One-shot convenience wrapper: build a plan and execute it once.

    Callers that iterate should build the :class:`WavefrontPlan` once
    and call :meth:`WavefrontPlan.execute` per iteration.
    """
    WavefrontPlan(xadj, adjncy, batched, offsets, backend=backend).execute(
        coords, cull_tol=cull_tol, moved=moved
    )
