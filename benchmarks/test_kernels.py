"""Micro-benchmarks of the library's computational kernels.

Unlike the experiment benches (which run once and assert shapes), these
use pytest-benchmark's normal timing loop, so regressions in the hot
kernels — reuse-distance analysis, LRU hierarchy simulation, RDR
construction, the vectorized smoothing sweep, and the Delaunay
substrate — show up as timing changes.
"""

import numpy as np
import pytest

from repro import generate_domain_mesh, rdr_ordering, reuse_distances, vertex_quality
from repro.memsim import MemoryLayout, simulate_trace, westmere_ex
from repro.meshgen import delaunay
from repro.smoothing import smooth_iteration_jacobi, trace_for_traversal


@pytest.fixture(scope="module")
def mesh():
    return generate_domain_mesh("ocean", target_vertices=2000, seed=0)


@pytest.fixture(scope="module")
def line_stream(mesh):
    q = vertex_quality(mesh)
    trace = trace_for_traversal(mesh, mesh.interior_vertices())
    return MemoryLayout.for_mesh(mesh).lines(trace)


def test_bench_reuse_distance_kernel(benchmark, line_stream):
    out = benchmark(reuse_distances, line_stream)
    assert out.size == line_stream.size


def test_bench_cache_hierarchy_kernel(benchmark, line_stream):
    machine = westmere_ex(scale=0.01)
    stats = benchmark(simulate_trace, line_stream, machine)
    assert stats.l1.accesses == line_stream.size


def test_bench_rdr_construction(benchmark, mesh):
    q = vertex_quality(mesh)
    order = benchmark(rdr_ordering, mesh, qualities=q)
    assert np.array_equal(np.sort(order), np.arange(mesh.num_vertices))


def test_bench_jacobi_sweep(benchmark, mesh):
    g = mesh.adjacency
    coords = mesh.vertices
    out = benchmark(
        smooth_iteration_jacobi, coords, g.xadj, g.adjncy, mesh.interior_mask
    )
    assert out.shape == coords.shape


def test_bench_delaunay(benchmark):
    pts = np.random.default_rng(3).random((1500, 2))
    tris = benchmark.pedantic(delaunay, args=(pts,), rounds=3, iterations=1)
    assert tris.shape[1] == 3


def test_bench_vertex_quality(benchmark, mesh):
    q = benchmark(vertex_quality, mesh)
    assert q.shape == (mesh.num_vertices,)
