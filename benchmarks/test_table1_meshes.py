"""Table 1: the nine-mesh test suite (generation + inventory)."""

from conftest import run_once

from repro.bench import format_table, save_json, table1_rows


def test_table1_mesh_suite(benchmark, cfg):
    rows = run_once(benchmark, table1_rows, cfg)
    print()
    print(format_table(rows, title="Table 1 - input mesh configuration"))
    save_json("table1", rows)

    assert len(rows) == 9
    for row in rows:
        # Scaled meshes must preserve the paper's triangle:vertex ratio
        # (~2:1 for large planar triangulations) and have work to do.
        assert row["vertices"] > 200
        assert 1.5 < row["triangles"] / row["vertices"] < 2.2
        assert row["interior"] > 0.5 * row["vertices"]
    # Relative sizes follow the paper's: ocean (M6) and wrench (M9) are
    # the two largest meshes (the generator's discrete pitch introduces
    # a few-percent wobble, so exact rank order is not asserted).
    sizes = {r["label"]: r["vertices"] for r in rows}
    assert sizes["M6"] >= 0.97 * max(sizes.values())
    assert sizes["M9"] >= 0.97 * max(sizes.values())
    assert min(sizes, key=sizes.get) in {"M2", "M8", "M7"}  # smallest in paper too
