"""Secondary signal: real wall-clock threaded smoothing.

CPython + small meshes cannot expose cache behaviour, so wall-clock
scaling here reflects NumPy-kernel overlap, not the paper's memory
effects (EXPERIMENTS.md, note 2). The bench records the numbers for the
report and asserts only sanity: correctness is thread-count-invariant,
and multithreading never catastrophically regresses. Scaling assertions
are skipped on single-core hosts.
"""

import os

import numpy as np
import pytest
from conftest import run_once

from repro import generate_domain_mesh, parallel_smooth
from repro.bench import format_table, save_json


def test_wallclock_threaded_smoothing(benchmark, cfg):
    def driver():
        mesh = generate_domain_mesh("wrench", target_vertices=6000, seed=0)
        rows = []
        results = {}
        for threads in (1, 2, 4):
            out = parallel_smooth(mesh, num_threads=threads, iterations=12)
            results[threads] = out
            rows.append(
                {
                    "threads": threads,
                    "wall_ms": out.wall_time_s * 1e3,
                    "quality_after": out.quality_after,
                }
            )
        return rows, results

    rows, results = run_once(benchmark, driver)
    print()
    print(format_table(rows, title="Wall clock - threaded Jacobi smoothing (wrench)"))
    save_json("wallclock_parallel", rows)

    # Numerical result is identical regardless of the thread count.
    base = results[1].mesh.vertices
    for t in (2, 4):
        assert np.allclose(results[t].mesh.vertices, base)

    cpus = os.cpu_count() or 1
    if cpus >= 2:
        # With real cores available, 2 threads must not be slower than
        # ~1.6x the single-thread time (barrier overhead bound).
        assert results[2].wall_time_s < 1.6 * results[1].wall_time_s
    else:
        pytest.skip("single-CPU host: wall-clock scaling not assertable")
