"""Extension: static vs dynamic reordering (Shontz & Knupp's finding).

The paper chose an a-priori (static) ordering because Shontz & Knupp
found re-reordering every iteration loses to reordering once, "because
of the overhead of the additional reorderings". The model reproduces
the conclusion: each reorder costs one native-ordered iteration
(Section 5.4's price) AND cold-restarts the caches (relocating every
byte), while Figure 6's iteration-stability means re-aligning buys
almost nothing.
"""

from conftest import run_once

from repro.bench import format_table, save_json, suite_meshes
from repro.core import run_dynamic_reordering


def test_ext_static_vs_dynamic(benchmark, cfg):
    def driver():
        mesh = suite_meshes(cfg)["M1"]
        rows = []
        for every, label in ((0, "static"), (4, "every-4"), (1, "every-1")):
            run = run_dynamic_reordering(mesh, "rdr", every=every, iterations=8)
            rows.append(
                {
                    "strategy": label,
                    "reorders": run.num_reorders,
                    "smoothing_ms": run.smoothing_seconds * 1e3,
                    "reorder_ms": run.reorder_seconds * 1e3,
                    "total_ms": run.total_seconds * 1e3,
                    "final_quality": run.final_quality,
                }
            )
        return rows

    rows = run_once(benchmark, driver)
    print()
    print(format_table(rows, title="Extension - static vs dynamic RDR (M1, 8 iterations)"))
    save_json("ext_dynamic", rows)

    by = {r["strategy"]: r for r in rows}
    # Shontz-Knupp: static wins; more reorders, more total time.
    assert by["static"]["total_ms"] < by["every-4"]["total_ms"]
    assert by["every-4"]["total_ms"] < by["every-1"]["total_ms"]
    # The quality outcome is unaffected by the strategy.
    qs = [r["final_quality"] for r in rows]
    assert max(qs) - min(qs) < 0.02
