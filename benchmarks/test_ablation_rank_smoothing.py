"""Ablation: patch-widening of the quality ranking signal.

The ranking signal (see :func:`repro.quality.patch_quality`) controls
how spatially coherent the quality-greedy traversal is. With the raw
per-vertex quality (0 passes) the traversal wanders and RDR's tail
reuse distances blow up; with a few widening passes the traversal
sweeps coherently and RDR approaches the first-touch oracle. This
ablation quantifies the paper-relevant sensitivity.
"""

from conftest import run_once

from repro.bench import format_table, save_json, serial_run


def test_ablation_rank_smoothing(benchmark, cfg):
    def driver():
        rows = []
        for passes in (0, 2, 4):
            for ordering in ("rdr", "oracle"):
                run = serial_run("M6", ordering, cfg, rank_passes=passes)
                prof = run.reuse_profile()
                rows.append(
                    {
                        "rank_passes": passes,
                        "ordering": ordering,
                        "q50": prof.q50,
                        "q90": prof.q90,
                        "q100": prof.q100,
                        "modeled_ms": run.modeled_seconds * 1e3,
                    }
                )
        return rows

    rows = run_once(benchmark, driver)
    print()
    print(format_table(rows, title="Ablation - ranking-signal patch widening"))
    save_json("ablation_rank_smoothing", rows)

    by = {(r["rank_passes"], r["ordering"]): r for r in rows}
    # Widening the patch collapses RDR's tail dramatically.
    assert by[(4, "rdr")]["q90"] < 0.3 * by[(0, "rdr")]["q90"]
    # And closes most of the gap to the oracle.
    assert by[(4, "rdr")]["q90"] <= 3 * max(1, by[(4, "oracle")]["q90"])
