"""Shared fixtures for the reproduction benchmarks.

Heavy artifacts (meshes, traced serial runs, the scaling sweep) are
cached inside :mod:`repro.bench.experiments`, so the first benchmark
touching an artifact pays for it and the rest reuse it. Run with
``pytest benchmarks/ --benchmark-only -s`` to see the reproduced
tables/figures printed.
"""

from __future__ import annotations

import pytest

from repro.bench import DEFAULT_CONFIG, BenchConfig


@pytest.fixture(scope="session")
def cfg() -> BenchConfig:
    """The session-wide experiment configuration."""
    return DEFAULT_CONFIG


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
