"""Figure 4 (with Figure 5's span argument): DFS vs BFS access traces.

Paper: under the BFS ordering the smoothing steps touch tightly
clustered data-array locations, while the DFS ordering scatters each
step's neighborhood across the array ("minimizing the span of accesses
allows for a better spatial locality", Figure 5). The quantitative
check is the mean per-smooth span of the coordinate locations touched.
"""

from conftest import run_once

from repro.bench import fig4_traces, save_json


def test_fig4_trace_snippets(benchmark, cfg):
    out = run_once(benchmark, fig4_traces, cfg, length=24)
    print()
    for name, locs in out["snippets"].items():
        print(f"Figure 4 ({name}): coords locations = {locs}")
    print("mean per-smooth span:", {k: round(v, 1) for k, v in out["mean_span"].items()})
    save_json("fig4", out)

    # BFS keeps each smoothing step's neighborhood much tighter in
    # storage than DFS (DFS tree edges are adjacent, but the back/cross
    # neighbors land far away).
    assert out["mean_span"]["bfs"] < out["mean_span"]["dfs"]
    assert len(out["snippets"]["bfs"]) == 24
