"""Million-vertex pipeline probe, run in a child process.

``test_scale_bench.py`` launches this script with ``subprocess`` so the
peak-RSS measurement (``ru_maxrss``) covers exactly the out-of-core
pipeline — meshgen to disk, memory-mapped load, streamed simulation —
and nothing of the pytest parent. Prints one JSON object on stdout.

Usage: ``python scale_child.py ROWS COLS WINDOW_EVENTS``
"""

from __future__ import annotations

import json
import resource
import sys
import tempfile
import time

from repro.config import RunConfig
from repro.core.pipeline import run_ordering
from repro.meshgen import load_chunked_mesh, write_structured_rectangle


def main(rows: int, cols: int, window_events: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="scale-bench-") as tmp:
        t0 = time.perf_counter()
        path = write_structured_rectangle(
            tmp,
            rows,
            cols,
            name="scale-rect",
            perturb_amplitude=0.25,
            seed=0,
        )
        meshgen_s = time.perf_counter() - t0

        mesh = load_chunked_mesh(path, mmap=True)
        config = RunConfig(
            engine="vectorized",
            sim_engine="batched",
            order_engine="batched",
            stream_window_events=window_events,
        )
        t0 = time.perf_counter()
        run = run_ordering(mesh, "rdr", config=config, fixed_iterations=1)
        pipeline_s = time.perf_counter() - t0

    events = int(run.cost.num_accesses)
    # Linux reports ru_maxrss in kibibytes.
    peak_rss_bytes = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    return {
        "vertices": int(mesh.num_vertices),
        "triangles": int(mesh.num_triangles),
        "ordering": "rdr",
        "stream_window_events": window_events,
        "events": events,
        "meshgen_s": meshgen_s,
        "pipeline_s": pipeline_s,
        "events_per_s": events / pipeline_s,
        "peak_rss_bytes": peak_rss_bytes,
        "l1_hits": int(run.cache.l1.hits),
        "l3_misses": int(run.cache.l3.misses),
    }


if __name__ == "__main__":
    rows, cols, window = (int(a) for a in sys.argv[1:4])
    print(json.dumps(main(rows, cols, window)))
