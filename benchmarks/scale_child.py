"""Million-vertex pipeline probe, run in a child process.

``test_scale_bench.py`` launches this script with ``subprocess`` so the
peak-RSS measurement (``ru_maxrss``) covers exactly the out-of-core
pipeline — meshgen to disk, memory-mapped load, smoothing, and the
streamed or fused simulation — and nothing of the pytest parent.
``ru_maxrss`` is sampled *in this process, immediately at pipeline
end* (before temp cleanup or JSON encoding can allocate), so the
number is the pipeline's own high-water mark, not a parent-side poll
that can miss the peak between samples. Prints one JSON object on
stdout.

Usage: ``python scale_child.py ROWS COLS WINDOW_EVENTS [TRACE_MODE]``
"""

from __future__ import annotations

import json
import resource
import sys
import tempfile
import time

from repro.config import RunConfig
from repro.core.pipeline import run_ordering
from repro.meshgen import load_chunked_mesh, write_structured_rectangle


def peak_rss_bytes() -> int:
    # Linux reports ru_maxrss in kibibytes.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def main(
    rows: int, cols: int, window_events: int, trace_mode: str
) -> dict:
    with tempfile.TemporaryDirectory(prefix="scale-bench-") as tmp:
        t0 = time.perf_counter()
        path = write_structured_rectangle(
            tmp,
            rows,
            cols,
            name="scale-rect",
            perturb_amplitude=0.25,
            seed=0,
        )
        meshgen_s = time.perf_counter() - t0

        mesh = load_chunked_mesh(path, mmap=True)
        config = RunConfig(
            engine="vectorized",
            sim_engine="batched",
            order_engine="batched",
            trace_mode=trace_mode,
            stream_window_events=window_events,
        )
        t0 = time.perf_counter()
        # The fused leg is the production summary path: cache counts +
        # modeled cost, no reuse analyses (which the materialized leg
        # also skips — OrderedRun computes them lazily, never here).
        run = run_ordering(
            mesh,
            "rdr",
            config=config,
            fixed_iterations=1,
            summary_only=trace_mode == "fused",
        )
        pipeline_s = time.perf_counter() - t0
        # Sample the high-water mark at pipeline end, in the child.
        peak_rss = peak_rss_bytes()

    events = int(run.cost.num_accesses)
    return {
        "vertices": int(mesh.num_vertices),
        "triangles": int(mesh.num_triangles),
        "ordering": "rdr",
        "trace_mode": trace_mode,
        "stream_window_events": window_events,
        "events": events,
        "meshgen_s": meshgen_s,
        "pipeline_s": pipeline_s,
        "events_per_s": events / pipeline_s,
        "peak_rss_bytes": peak_rss,
        "l1_hits": int(run.cache.l1.hits),
        "l3_misses": int(run.cache.l3.misses),
    }


if __name__ == "__main__":
    rows, cols, window = (int(a) for a in sys.argv[1:4])
    mode = sys.argv[4] if len(sys.argv) > 4 else "materialize"
    print(json.dumps(main(rows, cols, window, mode)))
