"""Figure 9 (+ the Equation-2 worked example): cache misses per level.

Paper (single core, average over meshes): RDR has 25% fewer L1 misses,
71% fewer L2 misses and 84% fewer L3 misses than ORI; for carabiner the
Eq.(2) extra cycles are ORI 927k / BFS 528k / RDR 210k. The
reproduction asserts the same orderings: RDR < BFS < ORI on L1 and L2
misses (L3 sits at the compulsory floor for every ordering on the
calibrated machine — the paper's "bare minimum" regime), and the
Eq.(2) extra-cycle ranking for M1.
"""

import numpy as np
from conftest import run_once

from repro.bench import eq2_example, fig9_rows, format_table, save_json


def _mean_misses(rows, ordering, level):
    vals = [r[f"{level}_misses"] for r in rows if r["ordering"] == ordering]
    return float(np.mean(vals))


def test_fig9_cache_miss_rates(benchmark, cfg):
    rows = run_once(benchmark, fig9_rows, cfg)
    print()
    print(format_table(rows, title="Figure 9 - cache performance (1 core, 1st iteration)"))
    save_json("fig9", rows)

    for level in ("L1", "L2"):
        ori = _mean_misses(rows, "ori", level)
        bfs = _mean_misses(rows, "bfs", level)
        rdr = _mean_misses(rows, "rdr", level)
        assert rdr < bfs < ori, f"{level}: expected rdr < bfs < ori, got {rdr}, {bfs}, {ori}"
    # Paper's headline reductions have the right sign and substance.
    l1_cut = 1 - _mean_misses(rows, "rdr", "L1") / _mean_misses(rows, "ori", "L1")
    l2_cut = 1 - _mean_misses(rows, "rdr", "L2") / _mean_misses(rows, "ori", "L2")
    print(f"mean miss reduction vs ORI: L1 {l1_cut:.0%} (paper 25%), L2 {l2_cut:.0%} (paper 71%)")
    assert l1_cut > 0.15
    assert l2_cut > 0.15


def test_eq2_extra_cycles_example(benchmark, cfg):
    rows = run_once(benchmark, eq2_example, cfg)
    print()
    print(format_table(rows, title="Eq.(2) extra cycles, carabiner (paper: ORI 927k / BFS 528k / RDR 210k)"))
    save_json("eq2_example", rows)

    by = {r["ordering"]: r["extra_kilocycles"] for r in rows}
    assert by["rdr"] < by["bfs"] < by["ori"]
