"""Scale robustness: the ordering gaps persist (and sharpen) with mesh size.

The suite's default meshes are small; this bench re-runs the serial
comparison at three sizes and checks the paper's qualitative results
are not an artifact of the smallest scale: RDR keeps winning, and its
q90 reuse-distance advantage over ORI does not shrink as meshes grow.
"""

from conftest import run_once

from repro.bench import format_table, save_json
from repro.core import run_ordering
from repro.meshgen import generate_domain_mesh


def test_scale_robustness(benchmark, cfg):
    def driver():
        rows = []
        for target in (800, 2000, 4500):
            mesh = generate_domain_mesh("ocean", target_vertices=target, seed=0)
            runs = {
                o: run_ordering(mesh, o, fixed_iterations=1)
                for o in ("ori", "rdr")
            }
            rows.append(
                {
                    "vertices": mesh.num_vertices,
                    "speedup_rdr_vs_ori": runs["ori"].modeled_seconds
                    / runs["rdr"].modeled_seconds,
                    "q90_ori": runs["ori"].reuse_profile().q90,
                    "q90_rdr": runs["rdr"].reuse_profile().q90,
                }
            )
        return rows

    rows = run_once(benchmark, driver)
    for r in rows:
        r["q90_ratio"] = r["q90_ori"] / max(1, r["q90_rdr"])
    print()
    print(format_table(rows, title="Scale robustness (ocean, 1st iteration)"))
    save_json("scale_robustness", rows)

    # RDR wins at every scale.
    assert all(r["speedup_rdr_vs_ori"] > 1.05 for r in rows)
    # The reuse-distance advantage does not shrink with size (if
    # anything it widens: ORI's tail grows with the mesh, RDR's window
    # stays bounded).
    assert rows[-1]["q90_ratio"] >= 0.8 * rows[0]["q90_ratio"]
