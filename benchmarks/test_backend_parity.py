"""Backend abstraction overhead: numpy-through-abstraction vs direct numpy.

The ``repro.backend`` layer promises that the default numpy backend is
free: ``asarray``/``to_numpy`` are zero-copy and the generic execute
path issues the identical op stream the direct-numpy engines ran before
the axis existed. This benchmark holds that promise to < 10% on the
three engines that accept a backend:

* the wavefront smoother (``WavefrontPlan`` vs an inline replica of the
  original per-level gather / ``np.add.reduceat`` / scatter loop),
* the batched stack-distance cache simulation
  (``config=RunConfig(sim_engine="batched", backend="numpy")`` vs the
  backend-less default path),
* the batched frontier ordering (``batched_bfs_ordering`` with and
  without ``backend="numpy"``).

Each pair is timed best-of-N on the same precomputed inputs so the
ratio measures only the abstraction, not allocation jitter.
"""

import time

import numpy as np
from conftest import run_once

from repro import RunConfig
from repro.backend import get_backend
from repro.bench import format_table, save_json
from repro.core.pipeline import run_ordering
from repro.memsim import MemoryLayout, calibrated_machine, simulate_trace
from repro.meshgen import perturb_interior, structured_rectangle
from repro.ordering.batched import batched_bfs_ordering
from repro.parallel.scheduler import wavefront_schedule
from repro.smoothing.vectorized import WavefrontPlan

MAX_RATIO = 1.10
REPEATS = 7
SWEEPS = 5


def _bench_mesh():
    mesh = structured_rectangle(224, 224, name="unit-square-50k")
    return perturb_interior(mesh, amplitude=0.2 / 224, seed=0)


def _best_of(fn, *args) -> float:
    best = np.inf
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def _direct_sweep(levels, coords):
    # The pre-abstraction smoother loop, inlined: gather, segment-sum,
    # divide, scatter. Level arrays are the plan's own (numpy backend is
    # zero-copy, so these are plain ndarrays).
    for level, nbrs, row_starts, divisor in levels:
        sums = np.add.reduceat(coords[nbrs], row_starts, axis=0)
        coords[level] = sums / divisor


def _smoother_row(mesh) -> dict:
    adj = mesh.adjacency
    seq = np.arange(mesh.num_vertices, dtype=np.int64)
    batched, offsets = wavefront_schedule(seq, adj.xadj, adj.adjncy)
    plan = WavefrontPlan(
        adj.xadj, adj.adjncy, batched, offsets, backend="numpy"
    )
    base = mesh.vertices

    def run_direct():
        coords = base.copy()
        for _ in range(SWEEPS):
            _direct_sweep(plan.levels, coords)
        return coords

    def run_backend():
        coords = base.copy()
        for _ in range(SWEEPS):
            plan.execute(coords)
        return coords

    np.testing.assert_array_equal(run_backend(), run_direct())
    direct_s = _best_of(run_direct)
    backend_s = _best_of(run_backend)
    return {
        "engine": "smoother",
        "direct_s": direct_s,
        "backend_s": backend_s,
        "ratio": backend_s / direct_s,
    }


def _memsim_row(mesh) -> dict:
    run = run_ordering(
        mesh, "rdr", fixed_iterations=1, config=RunConfig(engine="vectorized")
    )
    machine = calibrated_machine(MemoryLayout.for_mesh(run.mesh).total_bytes)
    plain = RunConfig(sim_engine="batched")
    backed = RunConfig(sim_engine="batched", backend="numpy")
    base = simulate_trace(run.lines, machine, config=plain)
    other = simulate_trace(run.lines, machine, config=backed)
    assert other.l1.hits == base.l1.hits
    def run_direct():
        simulate_trace(run.lines, machine, config=plain)

    def run_backend():
        simulate_trace(run.lines, machine, config=backed)

    direct_s = _best_of(run_direct)

    backend_s = _best_of(run_backend)
    return {
        "engine": "memsim-batched",
        "direct_s": direct_s,
        "backend_s": backend_s,
        "ratio": backend_s / direct_s,
    }


def _ordering_row(mesh) -> dict:
    xb = get_backend("numpy")
    np.testing.assert_array_equal(
        batched_bfs_ordering(mesh, backend=xb), batched_bfs_ordering(mesh)
    )
    direct_s = _best_of(batched_bfs_ordering, mesh)

    def run_backend():
        batched_bfs_ordering(mesh, backend=xb)

    backend_s = _best_of(run_backend)
    return {
        "engine": "ordering-bfs",
        "direct_s": direct_s,
        "backend_s": backend_s,
        "ratio": backend_s / direct_s,
    }


def _rows() -> list[dict]:
    mesh = _bench_mesh()
    return [_smoother_row(mesh), _memsim_row(mesh), _ordering_row(mesh)]


def test_numpy_backend_parity(benchmark):
    rows = run_once(benchmark, _rows)
    print()
    print(
        format_table(
            rows, title="numpy backend vs direct numpy (50k unit square)"
        )
    )
    save_json("backend_parity", rows)
    for row in rows:
        assert row["ratio"] <= MAX_RATIO, (
            f"{row['engine']}: numpy-through-abstraction is "
            f"{row['ratio']:.3f}x the direct path (gate {MAX_RATIO}x)"
        )
