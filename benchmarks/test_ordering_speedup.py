"""Ordering-engine speedup: the batched frontier/chain implementations.

Acceptance benchmark for the ``order_engine`` axis: on the 50k-vertex
unit-square mesh the batched engine must order at least 10x faster than
the reference implementation for ``rdr`` and at least 20x for ``bfs``
and ``rcm`` — while returning the element-wise identical permutation
(asserted inline on every timed call).

Timings are min-over-repeats with the reference and batched variants
interleaved, so background load hits both sides equally.  The batched
numbers are *warm*: the per-graph :class:`~repro.ordering.FrontierPlan`
(and, for rdr/oracle, the quality-keyed chain schedule) is built on the
first call and amortised across repeats — exactly how the pipelines
experience it, since a mesh is ordered once per run and the plan build
itself is array code.  The cold (first-call) time is recorded in the
JSON alongside.

The final row checks the paper's Section 5.4 budget: the warm batched
``rdr`` ordering must cost no more than 3 vectorized smoothing
iterations, keeping "reordering costs about one iteration" honest even
after the smoothing loop was vectorized.
"""

import time

import numpy as np
from conftest import run_once

from repro import RunConfig
from repro.bench import format_table, save_json
from repro.meshgen import perturb_interior, structured_rectangle
from repro.ordering import get_ordering
from repro.quality import patch_quality, vertex_quality
from repro.smoothing import laplacian_smooth

REPEATS = 5
SWEEP_ITERATIONS = 10

#: (ordering, minimum warm speedup); None = record only, no gate.
GATES = [
    ("rdr", 10.0),
    ("bfs", 20.0),
    ("rcm", 20.0),
    ("rbfs", None),
    ("oracle", None),
    ("sloan", None),
]


def _bench_mesh():
    mesh = structured_rectangle(224, 224, name="unit-square-50k")
    return perturb_interior(mesh, amplitude=0.2 / 224, seed=0)


def _time_ordering(mesh, name, rank_q) -> dict:
    ref_fn = get_ordering(name)
    bat_fn = get_ordering(name, order_engine="batched")

    # Cold: a fresh identical mesh, so no per-graph plan exists yet.
    fresh = mesh.permute(np.arange(mesh.num_vertices, dtype=np.int64))
    t0 = time.perf_counter()
    cold_order = bat_fn(fresh, qualities=rank_q)
    cold_s = time.perf_counter() - t0

    ref_s = bat_s = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        expected = ref_fn(mesh, qualities=rank_q)
        ref_s = min(ref_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        got = bat_fn(mesh, qualities=rank_q)
        bat_s = min(bat_s, time.perf_counter() - t0)
        assert np.array_equal(expected, got), name
    assert np.array_equal(expected, cold_order), name
    return {
        "ordering": name,
        "reference_ms": ref_s * 1e3,
        "batched_ms": bat_s * 1e3,
        "batched_cold_ms": cold_s * 1e3,
        "speedup": ref_s / bat_s,
        "cold_speedup": ref_s / cold_s,
    }


def _sweep_iteration_seconds(mesh) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        laplacian_smooth(
            mesh,
            traversal="storage",
            max_iterations=SWEEP_ITERATIONS,
            tol=-np.inf,
            config=RunConfig(engine="vectorized"),
        )
        best = min(best, time.perf_counter() - t0)
    return best / SWEEP_ITERATIONS


def _ordering_rows() -> tuple[list[dict], dict]:
    mesh = _bench_mesh()
    rank_q = patch_quality(mesh, base=vertex_quality(mesh))
    rows = [_time_ordering(mesh, name, rank_q) for name, _ in GATES]
    iter_s = _sweep_iteration_seconds(mesh)
    rdr_row = next(r for r in rows if r["ordering"] == "rdr")
    amortization = {
        "mesh": mesh.name,
        "num_vertices": mesh.num_vertices,
        "vectorized_iteration_ms": iter_s * 1e3,
        "batched_rdr_ms": rdr_row["batched_ms"],
        "iterations_equivalent": rdr_row["batched_ms"] / (iter_s * 1e3),
    }
    return rows, amortization


def test_batched_ordering_speedup(benchmark):
    rows, amortization = run_once(benchmark, _ordering_rows)
    print()
    print(
        format_table(
            rows, title="Batched ordering engine vs reference (50k unit square)"
        )
    )
    print(
        f"rdr amortization: {amortization['batched_rdr_ms']:.2f} ms "
        f"= {amortization['iterations_equivalent']:.2f} vectorized "
        f"smoothing iterations"
    )
    save_json("ordering_speedup", rows + [amortization])
    for name, floor in GATES:
        if floor is None:
            continue
        row = next(r for r in rows if r["ordering"] == name)
        assert row["speedup"] >= floor, (
            f"{name}: {row['speedup']:.1f}x < required {floor:.0f}x"
        )
    # Section 5.4: the ordering must stay within a few vectorized sweeps.
    assert amortization["iterations_equivalent"] <= 3.0
