"""Figure 10: per-mesh speedups on 1..32 cores, per ordering.

Paper: speedups relative to the 1-core ORI execution are super-linear
at low core counts (attributed to aggregate L3 growth with the
"scattered" thread distribution), reaching ~75-90x at 32 cores for RDR.
The reproduction asserts super-linearity at 4 cores, monotone scaling,
and RDR's dominance over ORI at every core count.
"""

from conftest import run_once

from repro.bench import fig10_rows, format_table, save_json


def test_fig10_per_mesh_scaling(benchmark, cfg):
    rows = run_once(benchmark, fig10_rows, cfg)
    print()
    print(format_table(rows, title="Figure 10 - speedup vs 1-core ORI"))
    save_json("fig10", rows)

    meshes = sorted({r["mesh"] for r in rows})
    cell = {(r["mesh"], r["cores"]): r for r in rows}
    max_p = max(cfg.cores)
    for m in meshes:
        # Super-linear at 4 cores (the paper's aggregate-L3 effect).
        assert cell[(m, 4)]["ori"] > 4.0
        # Scaling is monotone in cores for every ordering.
        for ordering in ("ori", "bfs", "rdr"):
            seq = [cell[(m, p)][ordering] for p in cfg.cores]
            assert all(b > a for a, b in zip(seq, seq[1:])), (m, ordering, seq)
        # RDR stays ahead of ORI at low-to-mid core counts, and never
        # falls meaningfully behind at the top end (EXPERIMENTS.md
        # discusses the tiny-block effect at 24-32 simulated cores on
        # benchmark-scale meshes).
        for p in cfg.cores:
            if p <= 8:
                assert cell[(m, p)]["rdr"] > cell[(m, p)]["ori"], (m, p)
            else:
                assert cell[(m, p)]["rdr"] > 0.9 * cell[(m, p)]["ori"], (m, p)
    # Mean over meshes: RDR ahead of ORI at every core count.
    import numpy as np

    for p in cfg.cores:
        rdr_mean = np.mean([cell[(m, p)]["rdr"] for m in meshes])
        ori_mean = np.mean([cell[(m, p)]["ori"] for m in meshes])
        assert rdr_mean > ori_mean, p
    # Headline: RDR's top-end speedup is large (paper: ~75).
    assert max(cell[(m, max_p)]["rdr"] for m in meshes) > 40
