"""Observability overhead gate: disabled tracing must stay under 5%.

The instrumentation left in the hot paths (``obs.span`` /
``obs.add`` / ``obs.observe``) runs unconditionally, so its disabled
cost is the price every un-traced run pays. The tracer's no-op path is
designed to be allocation-free — ``span()`` hands back a shared
singleton, metric helpers bail on one attribute check — and this
benchmark gates that design on the 50k-vertex unit-square pipeline:

1. count every instrumentation call the pipeline actually makes (by
   wrapping the ``repro.obs`` entry points during an enabled run);
2. microbench the per-call disabled cost of each entry point;
3. assert (calls x per-call cost) is under 5% of the un-traced
   pipeline's wall time.

The estimate is deliberately measured rather than A/B-timed: the calls
number in the hundreds (instrumentation is phase-granular, never
per memory event) while the pipeline runs for seconds, so a direct
A/B difference would drown in run-to-run noise long before it
approached the 5% bar. An enabled-vs-disabled wall-clock ratio is still
recorded (and loosely sanity-gated) alongside.
"""

import time

from conftest import run_once

import repro.obs as obs_mod
from repro import RunConfig, obs
from repro.bench import format_table, save_json
from repro.core.pipeline import run_ordering
from repro.meshgen import perturb_interior, structured_rectangle

PIPELINE_CONFIG = RunConfig(engine="vectorized", sim_engine="batched")
ITERATIONS = 2
MICRO_LOOPS = 200_000
MAX_DISABLED_OVERHEAD = 0.05


def _bench_mesh():
    mesh = structured_rectangle(224, 224, name="unit-square-50k")
    return perturb_interior(mesh, amplitude=0.2 / 224, seed=0)


def _run_pipeline(mesh):
    return run_ordering(
        mesh, "rdr", config=PIPELINE_CONFIG, fixed_iterations=ITERATIONS
    )


def _count_instrumentation_calls(mesh) -> dict[str, int]:
    """How many obs calls one traced pipeline run makes, per entry point."""
    counts = {"span": 0, "add": 0, "observe": 0, "gauge_set": 0}
    originals = {name: getattr(obs_mod, name) for name in counts}

    def counting(name):
        real = originals[name]

        def wrapper(*args, **kwargs):
            counts[name] += 1
            return real(*args, **kwargs)

        return wrapper

    for name in counts:
        setattr(obs_mod, name, counting(name))
    try:
        with obs.capture():
            _run_pipeline(mesh)
    finally:
        for name, real in originals.items():
            setattr(obs_mod, name, real)
    return counts


def _disabled_cost_per_call() -> dict[str, float]:
    """Per-call wall cost of each entry point with tracing off (seconds)."""
    assert not obs.is_enabled()
    costs = {}

    t0 = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        with obs.span("bench.nothing", key=1):
            pass
    costs["span"] = (time.perf_counter() - t0) / MICRO_LOOPS

    t0 = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        obs.add("bench.counter", 1)
    costs["add"] = (time.perf_counter() - t0) / MICRO_LOOPS

    t0 = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        obs.observe("bench.histogram", ())
    costs["observe"] = (time.perf_counter() - t0) / MICRO_LOOPS

    t0 = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        obs.gauge_set("bench.gauge", 1.0)
    costs["gauge_set"] = (time.perf_counter() - t0) / MICRO_LOOPS
    return costs


def _best_wall(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _overhead_rows() -> list[dict]:
    mesh = _bench_mesh()
    _run_pipeline(mesh)  # warm-up (orderings registry, numpy caches)

    calls = _count_instrumentation_calls(mesh)
    costs = _disabled_cost_per_call()
    disabled_wall = _best_wall(lambda: _run_pipeline(mesh))

    def enabled_run():
        with obs.capture():
            _run_pipeline(mesh)

    enabled_wall = _best_wall(enabled_run)

    disabled_cost = sum(calls[name] * costs[name] for name in calls)
    return [
        {
            "mesh": mesh.name,
            "num_vertices": mesh.num_vertices,
            "iterations": ITERATIONS,
            "obs_calls": sum(calls.values()),
            "span_calls": calls["span"],
            "metric_calls": sum(calls.values()) - calls["span"],
            "null_span_ns": costs["span"] * 1e9,
            "null_add_ns": costs["add"] * 1e9,
            "pipeline_wall_s": disabled_wall,
            "disabled_obs_cost_s": disabled_cost,
            "disabled_overhead_%": 100.0 * disabled_cost / disabled_wall,
            "enabled_wall_s": enabled_wall,
            "enabled_ratio": enabled_wall / disabled_wall,
        }
    ]


def test_disabled_tracer_overhead_under_5_percent(benchmark):
    rows = run_once(benchmark, _overhead_rows)
    print()
    print(format_table(rows, title="obs overhead (50k unit square)"))
    save_json("obs_overhead", rows)
    (row,) = rows

    # The pipeline is instrumented phase-granularly: a traced run makes
    # hundreds of obs calls, not millions.
    assert 0 < row["obs_calls"] < 10_000

    # The acceptance gate: instrumentation with tracing off costs under
    # 5% of the un-traced pipeline's wall time.
    assert row["disabled_overhead_%"] <= 100.0 * MAX_DISABLED_OVERHEAD

    # Enabled tracing is not the gated path: a traced run additionally
    # computes the live reuse-distance histogram (a full stack-distance
    # pass over the trace), which legitimately multiplies the wall time
    # of this fast vectorized+batched pipeline. Bound it loosely so a
    # per-event-instrumentation regression would still trip.
    assert row["enabled_ratio"] < 10.0
