"""Figure 13: RDR's gain in execution time over ORI and BFS, per cores.

Paper: the gain over ORI is 20-30% at every core count; over BFS it is
10-30% (with one negative outlier, valve on 4 cores). The reproduction
asserts a solidly positive mean gain over ORI at every core count and a
non-catastrophic relationship to BFS.
"""

from conftest import run_once

from repro.bench import fig13_rows, format_table, save_json


def test_fig13_gain_over_baselines(benchmark, cfg):
    rows = run_once(benchmark, fig13_rows, cfg)
    print()
    print(format_table(rows, title="Figure 13 - gain of RDR in execution time (%)"))
    save_json("fig13", rows)

    for r in rows:
        if r["vs"] == "ori":
            # Paper: 20-30% gain over ORI across the sweep. At 24-32
            # simulated cores the benchmark-scale blocks shrink to ~100
            # vertices and the gain narrows (see EXPERIMENTS.md); it must
            # stay solidly positive at low-to-mid counts and never flip
            # materially negative.
            if r["cores"] <= 8:
                assert r["mean_gain_%"] > 8.0, r
            else:
                assert r["mean_gain_%"] > -5.0, r
        else:
            # Against BFS: clearly ahead serially (the paper's 1.19x);
            # at scaled-down block sizes BFS's compact blocks win back
            # some ground (documented fidelity gap).
            if r["cores"] == 1:
                assert r["mean_gain_%"] > 0.0, r
            else:
                assert r["mean_gain_%"] > -25.0, r
    ori_gains = [r["mean_gain_%"] for r in rows if r["vs"] == "ori"]
    assert max(ori_gains) > 15.0
