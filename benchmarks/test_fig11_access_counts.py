"""Figure 11: L2/L3/memory access counts vs core count (ORI ordering).

Paper (carabiner/crake/dialog): as cores grow, the aggregate cache
grows, so the number of accesses reaching remote levels decreases —
"the distance where the data is fetched decreases with the number of
cores". This is the mechanism behind the super-linear speedups, so the
reproduction asserts memory accesses fall sharply between 1 core and
the full machine.
"""

from conftest import run_once

from repro.bench import fig11_rows, format_table, save_json


def test_fig11_access_counts(benchmark, cfg):
    rows = run_once(benchmark, fig11_rows, cfg)
    print()
    print(format_table(rows, title="Figure 11 - accesses per level vs cores (ORI)"))
    save_json("fig11", rows)

    cell = {(r["mesh"], r["cores"]): r for r in rows}
    max_p = max(cfg.cores)
    for m in ("M1", "M2", "M3"):
        mem_1 = cell[(m, 1)]["memory_accesses"]
        mem_p = cell[(m, max_p)]["memory_accesses"]
        # Off-chip traffic collapses once the aggregate cache holds the mesh.
        assert mem_p < 0.5 * mem_1, (m, mem_1, mem_p)
        # L3 traffic also falls (more work served by the private levels).
        assert cell[(m, max_p)]["L3_accesses"] < cell[(m, 1)]["L3_accesses"]
