"""Figure 1: reuse-distance profiles of random / ORI / BFS on ocean.

Paper: random ordering has avg reuse distance ~90k, the original
ordering ~4450, BFS ~2910, with L1 miss rates and execution times in the
same order. The reproduction must preserve that strict ordering.
"""

from conftest import run_once

from repro.bench import fig1_profiles, format_table, render_series, save_json


def test_fig1_reuse_profiles(benchmark, cfg):
    out = run_once(benchmark, fig1_profiles, cfg)
    rows = out["rows"]
    print()
    print(format_table(rows, title="Figure 1 - ordering profiles (ocean, M6)"))
    for ordering, (xs, ys) in out["series"].items():
        print(render_series(xs, ys, title=f"reuse distance over time: {ordering}", logy=True))
    save_json("fig1", rows)

    by = {r["ordering"]: r for r in rows}
    # Strict ordering of reuse distances: random >> ori > bfs, with the
    # upper quartile carrying the contrast (see driver docstring).
    assert by["random"]["q75_reuse_distance"] > 2 * by["ori"]["q75_reuse_distance"]
    assert by["ori"]["q75_reuse_distance"] > by["bfs"]["q75_reuse_distance"]
    assert by["random"]["avg_reuse_distance"] > by["ori"]["avg_reuse_distance"]
    assert by["ori"]["avg_reuse_distance"] > by["bfs"]["avg_reuse_distance"]
    # L1 miss rates and modeled times follow the same order.
    assert by["random"]["l1_miss_rate_%"] > by["ori"]["l1_miss_rate_%"]
    assert by["ori"]["l1_miss_rate_%"] > by["bfs"]["l1_miss_rate_%"]
    assert by["random"]["modeled_time_ms"] > by["ori"]["modeled_time_ms"]
    assert by["ori"]["modeled_time_ms"] > by["bfs"]["modeled_time_ms"]
