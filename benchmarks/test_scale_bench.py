"""Million-vertex regime gate: out-of-core pipeline under a memory budget.

Acceptance benchmark for the streaming/out-of-core path: a full
pipeline run — structured meshgen spilled to disk strip by strip,
memory-mapped load, RDR ordering, one traced smoothing iteration, and
the batched cache simulation windowed through the streaming engine —
on a >=1M-vertex mesh must fit in 2 GB of peak RSS. The run executes
in a child process (``scale_child.py``) so ``ru_maxrss`` measures the
pipeline alone, not the pytest parent; throughput and the memory peak
land in ``bench_results/scale_bench.json`` for the summary report.

The exactness of the streamed counts is not re-proven here — the
differential suite in ``tests/memsim/test_streaming.py`` pins
streaming == in-memory bit for bit; this gate pins that the composition
actually stays within the budget at scale.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import format_table, save_json

#: 1024 x 1024 structured grid -> 1,048,576 vertices, ~16.7M trace events.
ROWS = COLS = 1024
WINDOW_EVENTS = 4_000_000
RSS_BUDGET_BYTES = 2 * 1024**3


@pytest.mark.slow
def test_million_vertex_pipeline_under_memory_budget():
    child = Path(__file__).with_name("scale_child.py")
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[1] / "src"
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, str(child), str(ROWS), str(COLS), str(WINDOW_EVENTS)],
        env=env,
        capture_output=True,
        text=True,
        timeout=1800,
    )
    assert proc.returncode == 0, proc.stderr
    row = json.loads(proc.stdout)

    save_json("scale_bench", row)
    print()
    print(
        format_table(
            [
                {
                    "vertices": row["vertices"],
                    "events": row["events"],
                    "events/s": f"{row['events_per_s']:,.0f}",
                    "pipeline_s": f"{row['pipeline_s']:.1f}",
                    "peak_rss_mb": f"{row['peak_rss_bytes'] / 2**20:,.0f}",
                }
            ],
            title="million-vertex streaming pipeline",
        )
    )

    assert row["vertices"] >= 1_000_000
    assert row["events"] >= 10_000_000
    assert row["events_per_s"] > 0
    assert row["peak_rss_bytes"] < RSS_BUDGET_BYTES, (
        f"peak RSS {row['peak_rss_bytes'] / 2**20:.0f} MiB exceeds the "
        f"{RSS_BUDGET_BYTES / 2**20:.0f} MiB budget"
    )
