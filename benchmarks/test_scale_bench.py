"""Million-vertex regime gates: streamed and fused pipelines under
memory budgets.

Acceptance benchmarks for the out-of-core and fused paths, both on a
>=1M-vertex mesh in a child process (``scale_child.py``) so
``ru_maxrss`` — sampled in the child at pipeline end — measures the
pipeline alone, not the pytest parent:

* ``materialize`` — structured meshgen spilled to disk strip by strip,
  memory-mapped load, RDR ordering, one traced smoothing iteration,
  and the batched cache simulation windowed through the streaming
  engine. Budget: 2 GB peak RSS (the pre-fusion regime; the full
  17M-event trace and line stream are still resident).
* ``fused`` — same pipeline, but the smoother streams bounded windows
  straight into the simulators through the double-buffered
  :class:`~repro.memsim.sink.FusedSink`; the monolithic trace never
  exists. Budget: 1.2 GB peak RSS, and wall-clock no worse than the
  materialized run (production overlaps simulation).

The exactness of the streamed/fused counts is not re-proven here — the
differential suites in ``tests/memsim/test_streaming.py`` and
``tests/memsim/test_fused.py`` pin bit-identity; these gates pin that
the composition actually stays within its budgets at scale. Both rows
land in ``bench_results/fused_pipeline.json`` (the materialized row
also keeps its historical home in ``scale_bench.json``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import format_table, save_json

#: 1024 x 1024 structured grid -> 1,048,576 vertices, ~16.7M trace events.
ROWS = COLS = 1024
WINDOW_EVENTS = 4_000_000
#: The fused leg exercises the window knob as production would use it:
#: with two windows in flight by construction, a smaller window is a
#: direct peak-RSS lever at zero cost to the (bit-identical) counts.
FUSED_WINDOW_EVENTS = 1_000_000
RSS_BUDGET_BYTES = 2 * 1024**3
FUSED_RSS_BUDGET_BYTES = int(1.2 * 1024**3)
#: Wall-clock guard band: overlap should make fused *faster*, but the
#: gate tolerates scheduler noise on shared CI machines.
FUSED_WALL_TOLERANCE = 1.05


def run_child(trace_mode: str) -> dict:
    child = Path(__file__).with_name("scale_child.py")
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[1] / "src"
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src), env.get("PYTHONPATH")) if p
    )
    window = FUSED_WINDOW_EVENTS if trace_mode == "fused" else WINDOW_EVENTS
    proc = subprocess.run(
        [
            sys.executable,
            str(child),
            str(ROWS),
            str(COLS),
            str(window),
            trace_mode,
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=1800,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def table_row(row: dict) -> dict:
    return {
        "trace_mode": row["trace_mode"],
        "vertices": row["vertices"],
        "events": row["events"],
        "events/s": f"{row['events_per_s']:,.0f}",
        "pipeline_s": f"{row['pipeline_s']:.1f}",
        "peak_rss_mb": f"{row['peak_rss_bytes'] / 2**20:,.0f}",
    }


@pytest.mark.slow
def test_million_vertex_pipeline_under_memory_budget():
    mat = run_child("materialize")
    fused = run_child("fused")

    save_json("scale_bench", mat)
    save_json(
        "fused_pipeline",
        {
            "materialize": mat,
            "fused": fused,
            "rss_reduction": mat["peak_rss_bytes"] / fused["peak_rss_bytes"],
            "wall_ratio": fused["pipeline_s"] / mat["pipeline_s"],
        },
    )
    print()
    print(
        format_table(
            [table_row(mat), table_row(fused)],
            title="million-vertex pipeline: streamed vs fused",
        )
    )

    for row in (mat, fused):
        assert row["vertices"] >= 1_000_000
        assert row["events"] >= 10_000_000
        assert row["events_per_s"] > 0
    # Fused and materialized runs simulate the identical event stream.
    assert fused["events"] == mat["events"]
    assert fused["l1_hits"] == mat["l1_hits"]
    assert fused["l3_misses"] == mat["l3_misses"]

    assert mat["peak_rss_bytes"] < RSS_BUDGET_BYTES, (
        f"peak RSS {mat['peak_rss_bytes'] / 2**20:.0f} MiB exceeds the "
        f"{RSS_BUDGET_BYTES / 2**20:.0f} MiB budget"
    )
    assert fused["peak_rss_bytes"] < FUSED_RSS_BUDGET_BYTES, (
        f"fused peak RSS {fused['peak_rss_bytes'] / 2**20:.0f} MiB "
        f"exceeds the {FUSED_RSS_BUDGET_BYTES / 2**20:.0f} MiB budget"
    )
    assert fused["pipeline_s"] <= mat["pipeline_s"] * FUSED_WALL_TOLERANCE, (
        f"fused wall-clock {fused['pipeline_s']:.1f}s worse than "
        f"materialized {mat['pipeline_s']:.1f}s"
    )
