"""Figure 6: reuse-distance profiles repeat across smoothing iterations.

Paper (carabiner, original ordering, 8 iterations): "the reuse distance
has similar patterns over the different iterations" — the observation
that justifies a one-shot (a-priori) reordering. The reproduction
checks the per-iteration bucketed profiles correlate strongly with the
first iteration's profile.
"""

import numpy as np
from conftest import run_once

from repro.bench import fig6_series, render_series, save_json


def test_fig6_iteration_stability(benchmark, cfg):
    out = run_once(benchmark, fig6_series, cfg, iterations=6)
    series = out["series"]
    corr = out["correlation_with_first"]
    print()
    ys = [y for s in series for y in s]
    xs = list(range(len(ys)))
    print(render_series(xs, ys, title="Figure 6 - reuse distance across iterations (M1, ORI)", logy=True))
    print("correlation of each iteration's profile with iteration 0:", [f"{c:.2f}" for c in corr])
    save_json("fig6", {"correlation_with_first": corr})

    assert len(series) == 6
    # Profiles are stable across iterations.
    assert np.mean(corr) > 0.6
    assert min(corr) > 0.3
