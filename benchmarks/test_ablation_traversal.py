"""Ablation: greedy (paper) vs storage (Algorithm 1 literal) traversal.

DESIGN.md calls out the traversal policy as the main modelling degree of
freedom. Under the storage traversal the reordering alone decides
locality (reuse distances ~ layout bandwidth); under the greedy
traversal the alignment between ordering and traversal decides. RDR is
built for the greedy traversal, so its advantage over BFS should be
specific to it — that asymmetry is the ablation's check.
"""

import pytest
from conftest import run_once

from repro.bench import format_table, save_json, serial_run


@pytest.mark.parametrize("traversal", ["greedy", "storage"])
def test_ablation_traversal(benchmark, cfg, traversal):
    def driver():
        rows = []
        for ordering in ("random", "ori", "bfs", "rdr"):
            run = serial_run("M6", ordering, cfg, traversal=traversal)
            prof = run.reuse_profile()
            rows.append(
                {
                    "ordering": ordering,
                    "traversal": traversal,
                    "modeled_ms": run.modeled_seconds * 1e3,
                    "q50": prof.q50,
                    "q90": prof.q90,
                }
            )
        return rows

    rows = run_once(benchmark, driver)
    print()
    print(format_table(rows, title=f"Ablation - traversal={traversal}"))
    save_json(f"ablation_traversal_{traversal}", rows)

    by = {r["ordering"]: r for r in rows}
    # Under either traversal, random is the worst ordering.
    assert by["random"]["modeled_ms"] > by["bfs"]["modeled_ms"]
    assert by["random"]["modeled_ms"] > by["rdr"]["modeled_ms"]
    if traversal == "greedy":
        # RDR's storage order matches the traversal: it wins.
        assert by["rdr"]["modeled_ms"] < by["bfs"]["modeled_ms"]
        assert by["rdr"]["q90"] < by["bfs"]["q90"]
