"""Extension: a next-line prefetcher in the hierarchy model.

Section 3.1 notes real machines fetch by lines and prefetch, which the
first-order model ignores. This bench turns on a sequential next-line
prefetcher and checks the interaction with orderings: streaming layouts
(RDR, oracle) benefit the most — consecutive lines are exactly what
they touch next — while random gains nothing, WIDENING the gap the
paper measures rather than erasing it.
"""

from conftest import run_once

from repro.bench import format_table, save_json, serial_run
from repro.memsim import simulate_trace


def test_ext_next_line_prefetch(benchmark, cfg):
    def driver():
        rows = []
        for ordering in ("random", "ori", "rdr"):
            run = serial_run("M6", ordering, cfg)
            base = run.cache
            pf = simulate_trace(run.lines, run.machine, next_line_prefetch=True)
            rows.append(
                {
                    "ordering": ordering,
                    "L1_misses": base.l1.misses,
                    "L1_misses_prefetch": pf.l1.misses,
                    "saved_%": 100 * (1 - pf.l1.misses / base.l1.misses),
                }
            )
        return rows

    rows = run_once(benchmark, driver)
    print()
    print(format_table(rows, title="Extension - next-line prefetch x ordering (M6)"))
    save_json("ext_prefetch", rows)

    by = {r["ordering"]: r for r in rows}
    # Prefetch helps the streaming layout far more than the random one.
    assert by["rdr"]["saved_%"] > by["random"]["saved_%"]
    # And never increases misses for the structured layouts.
    assert by["rdr"]["L1_misses_prefetch"] <= by["rdr"]["L1_misses"]
    assert by["ori"]["L1_misses_prefetch"] <= by["ori"]["L1_misses"]
