"""Seed robustness: the headline result is not a seed artifact.

Re-runs the Figure 8 core comparison with a different generator seed
(different jitter, different quality field realization, different mesh)
and asserts the winners are unchanged.
"""

import numpy as np
from conftest import run_once

from repro.bench import BenchConfig, fig8_rows, format_table, save_json


def test_seed_robustness(benchmark, cfg):
    def driver():
        out = {}
        for seed in (0, 1):
            alt = BenchConfig(
                suite_scale=cfg.suite_scale,
                scaling_scale=cfg.scaling_scale,
                seed=seed,
                quality_structure=cfg.quality_structure,
            )
            out[seed] = fig8_rows(alt)
        return out

    out = run_once(benchmark, driver)
    print()
    for seed, rows in out.items():
        vs_ori = [r["speedup_rdr_vs_ori"] for r in rows]
        print(
            f"seed {seed}: RDR vs ORI mean {np.mean(vs_ori):.3f} "
            f"(min {min(vs_ori):.3f})"
        )
    save_json("seed_robustness", {str(k): v for k, v in out.items()})

    for seed, rows in out.items():
        vs_ori = [r["speedup_rdr_vs_ori"] for r in rows]
        vs_bfs = [r["speedup_rdr_vs_bfs"] for r in rows]
        # Same winners at every seed.
        assert min(vs_ori) > 1.05, seed
        assert float(np.mean(vs_bfs)) > 1.0, seed
