"""Section 5.4: the cost of the reordering pre-computation.

Paper: RDR's reordering costs about one smoothing iteration, so with a
20-30% per-iteration gain it pays for itself after ~4 iterations. The
reproduction measures the actual wall-clock ratio (both sides are pure
Python here, so the ratio — not the absolute time — is the meaningful
quantity) and checks the break-even arithmetic.
"""

from conftest import run_once

from repro.bench import format_table, save_json, sec54_rows
from repro import break_even_iterations


def test_sec54_reordering_cost(benchmark, cfg):
    rows = run_once(benchmark, sec54_rows, cfg)
    print()
    print(format_table(rows, title="Section 5.4 - reordering cost (wall clock)"))
    save_json("sec54", rows)

    for r in rows:
        # The pre-computation stays within a few smoothing iterations
        # (the paper's "approximately one iteration" at C++ speed;
        # Python constant factors differ between the two code paths).
        assert r["iterations_equivalent"] < 6.0, r

    # Break-even arithmetic, with the paper's numbers: cost of one
    # iteration, 25% gain -> pays off after 4 iterations.
    assert abs(break_even_iterations(reorder_cost_iterations=1.0, gain_fraction=0.25) - 4.0) < 1e-12
