"""Engine speedup: vectorized smoothing and sharded memsim replay.

Acceptance benchmark for the fast-engine work: on a 50k-vertex
unit-square mesh, ``engine="vectorized"`` must run the same
Gauss-Seidel storage sweep at least 5x faster than the reference
per-vertex loop (and the coordinates must agree to ``rtol=1e-12``).
With trace recording on — the configuration the full pipeline actually
runs — the gap widens to tens of x, because the reference engine
appends ``4 + 2*deg`` trace events per vertex in interpreted Python
while the vectorized engine builds each iteration's event block with
a handful of array ops.

The second half times the sharded multicore replay against the
sequential engine on the same traced workload and checks the results
are identical (the differential suite pins exactness; here we record
the wall-clock ratio alongside).
"""

import time

import numpy as np
from conftest import run_once

from repro import RunConfig
from repro.bench import format_table, save_json
from repro.core.pipeline import default_machine_for
from repro.memsim import MemoryLayout, simulate_multicore
from repro.meshgen import perturb_interior, structured_rectangle
from repro.parallel import parallel_traces
from repro.smoothing import laplacian_smooth

ITERATIONS = 10


def _bench_mesh():
    mesh = structured_rectangle(224, 224, name="unit-square-50k")
    return perturb_interior(mesh, amplitude=0.2 / 224, seed=0)


def _time_engines(record_trace: bool) -> dict:
    mesh = _bench_mesh()
    times, results = {}, {}
    for engine in ("reference", "vectorized"):
        t0 = time.perf_counter()
        results[engine] = laplacian_smooth(
            mesh,
            traversal="storage",
            max_iterations=ITERATIONS,
            tol=-np.inf,
            record_trace=record_trace,
            config=RunConfig(engine=engine),
        )
        times[engine] = time.perf_counter() - t0
    assert np.allclose(
        results["reference"].mesh.vertices,
        results["vectorized"].mesh.vertices,
        rtol=1e-12,
        atol=0.0,
    )
    if record_trace:
        ref, vec = results["reference"].trace, results["vectorized"].trace
        assert np.array_equal(ref.array_ids, vec.array_ids)
        assert np.array_equal(ref.indices, vec.indices)
        assert np.array_equal(ref.is_write, vec.is_write)
    return {
        "mesh": mesh.name,
        "num_vertices": mesh.num_vertices,
        "iterations": ITERATIONS,
        "record_trace": record_trace,
        "reference_s": times["reference"],
        "vectorized_s": times["vectorized"],
        "speedup": times["reference"] / times["vectorized"],
    }


def _smoothing_rows() -> list[dict]:
    return [_time_engines(False), _time_engines(True)]


def test_vectorized_engine_speedup(benchmark):
    rows = run_once(benchmark, _smoothing_rows)
    print()
    print(
        format_table(
            rows, title="Vectorized engine vs reference (50k unit square)"
        )
    )
    save_json("engine_speedup", rows)
    # The acceptance bar: >=5x on the plain (untraced) sweep; the traced
    # configuration is gated loosely since it is far past the bar.
    assert rows[0]["speedup"] >= 5.0
    assert rows[1]["speedup"] >= 10.0


def _sharded_rows() -> list[dict]:
    mesh = _bench_mesh()
    machine = default_machine_for(mesh, profile="scaling")
    traces = parallel_traces(
        mesh, machine.num_cores, iterations=2, traversal="storage"
    )
    layout = MemoryLayout.for_mesh(mesh, line_size=machine.line_size)
    lines_per_core = [layout.lines(t) for t in traces]
    timings, outputs = {}, {}
    for engine in ("sequential", "sharded"):
        t0 = time.perf_counter()
        outputs[engine] = simulate_multicore(
            lines_per_core, machine, config=RunConfig(mem_engine=engine)
        )
        timings[engine] = time.perf_counter() - t0
    for a, b in zip(
        outputs["sequential"].per_core, outputs["sharded"].per_core
    ):
        assert a == b
    return [
        {
            "mesh": mesh.name,
            "num_cores": machine.num_cores,
            "num_sockets": machine.num_sockets,
            "line_accesses": int(sum(s.size for s in lines_per_core)),
            "sequential_s": timings["sequential"],
            "sharded_s": timings["sharded"],
            "speedup": timings["sequential"] / timings["sharded"],
        }
    ]


def test_sharded_memsim_speedup(benchmark):
    rows = run_once(benchmark, _sharded_rows)
    print()
    print(format_table(rows, title="Sharded vs sequential memsim replay"))
    save_json("engine_speedup_memsim", rows)
    # Exactness is asserted inside the driver; the wall-clock ratio
    # depends on core count and trace size, so only sanity-gate it.
    assert rows[0]["speedup"] > 0.5
