"""Trace-construction throughput: growth-buffer vs list-append builder.

Acceptance micro-bench for the ``TraceBuilder`` rewrite that rode along
with the fused trace pipeline: the builder used to collect one ndarray
fragment per emitted burst and ``np.concatenate`` them at ``build()``.
For the reference traversal — which emits *per vertex* — that meant six
tiny array allocations plus list appends per smoothing step and a
concatenate over hundreds of thousands of fragments at the end. The
rewrite lands events in power-of-two growth buffers (amortised O(1)
appends), so the per-vertex path gets a multi-x win, while the
vectorized batch path — which was already one fragment per burst — must
stay at parity (it additionally gains the zero-copy ``alloc_columns``
reservation used by the trace sinks).

Both rows pin bit-identical traces against the legacy builder; the
gates are loose because CI machines vary (observed: ~3x per-vertex,
~1x batched).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import run_once

from repro.bench import format_table, save_json
from repro.memsim.trace import ARRAY_IDS, AccessTrace, TraceBuilder
from repro.meshgen import structured_rectangle
from repro.smoothing.trace import (
    append_smooth_accesses,
    append_smooth_accesses_batch,
    iter_traversal_chunks,
)

#: Burst size in events for the batched row — roughly one wavefront
#: level of the meshes the pipelines run.
BURST_EVENTS = 8_192
ITERATIONS = 2


class LegacyListBuilder:
    """The pre-rewrite ``TraceBuilder``: fragment lists + final concat.

    Kept here (not in the library) purely as the micro-bench baseline;
    it implements just enough of the builder surface for the two
    producers to drive it — notably it does *not* expose
    ``alloc_columns``, so the batch producer allocates temporary event
    arrays per burst, exactly as the old code path did.
    """

    def __init__(self) -> None:
        self._ids: list[np.ndarray] = []
        self._idx: list[np.ndarray] = []
        self._wr: list[np.ndarray] = []
        self._length = 0
        self._iter_starts: list[int] = []

    def begin_iteration(self) -> None:
        self._iter_starts.append(self._length)

    def append_columns(self, array_ids, indices, is_write) -> None:
        self._ids.append(np.ascontiguousarray(array_ids, dtype=np.uint8))
        self._idx.append(np.ascontiguousarray(indices, dtype=np.int64))
        self._wr.append(np.ascontiguousarray(is_write, dtype=bool))
        self._length += self._ids[-1].size

    def append(self, array, indices, *, write: bool = False) -> None:
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        if idx.size == 0:
            return
        self.append_columns(
            np.full(idx.size, ARRAY_IDS[array], dtype=np.uint8),
            idx,
            np.full(idx.size, write, dtype=bool),
        )

    def build(self, **meta) -> AccessTrace:
        return AccessTrace(
            np.concatenate(self._ids) if self._ids else np.empty(0, np.uint8),
            np.concatenate(self._idx) if self._idx else np.empty(0, np.int64),
            np.concatenate(self._wr) if self._wr else np.empty(0, bool),
            iteration_starts=np.asarray(
                self._iter_starts or [0], dtype=np.int64
            ),
            meta=meta,
        )


def _produce(builder_cls, producer, xadj, adjncy, seq):
    t0 = time.perf_counter()
    builder = builder_cls()
    for _ in range(ITERATIONS):
        builder.begin_iteration()
        producer(builder, xadj, adjncy, seq)
    trace = builder.build()
    return trace, time.perf_counter() - t0


def _per_vertex(builder, xadj, adjncy, seq):
    for v in seq:
        append_smooth_accesses(builder, xadj, adjncy, int(v))


def _batched(builder, xadj, adjncy, seq):
    for chunk in iter_traversal_chunks(xadj, seq, BURST_EVENTS):
        append_smooth_accesses_batch(builder, xadj, adjncy, chunk)


def _time_producer(name, producer, xadj, adjncy, seq) -> dict:
    # Warm both paths once (imports, allocator), then take best-of-3.
    for cls in (LegacyListBuilder, TraceBuilder):
        _produce(cls, producer, xadj, adjncy, seq)
    legacy_s = growth_s = float("inf")
    for _ in range(3):
        legacy_trace, t = _produce(
            LegacyListBuilder, producer, xadj, adjncy, seq
        )
        legacy_s = min(legacy_s, t)
        growth_trace, t = _produce(TraceBuilder, producer, xadj, adjncy, seq)
        growth_s = min(growth_s, t)
    assert np.array_equal(legacy_trace.array_ids, growth_trace.array_ids)
    assert np.array_equal(legacy_trace.indices, growth_trace.indices)
    assert np.array_equal(legacy_trace.is_write, growth_trace.is_write)
    assert np.array_equal(
        legacy_trace.iteration_starts, growth_trace.iteration_starts
    )
    events = len(growth_trace)
    return {
        "producer": name,
        "events": events,
        "legacy_s": legacy_s,
        "growth_s": growth_s,
        "speedup": legacy_s / growth_s,
        "events_per_s": events / growth_s,
    }


def _bench_rows() -> list[dict]:
    mesh = structured_rectangle(160, 160, name="trace-builder-bench")
    g = mesh.adjacency
    seq = mesh.interior_vertices()
    return [
        _time_producer("per-vertex", _per_vertex, g.xadj, g.adjncy, seq),
        _time_producer("batched", _batched, g.xadj, g.adjncy, seq),
    ]


def test_trace_builder_throughput(benchmark):
    rows = run_once(benchmark, _bench_rows)
    print()
    print(
        format_table(
            [
                {
                    "producer": row["producer"],
                    "events": row["events"],
                    "legacy_s": f"{row['legacy_s']:.4f}",
                    "growth_s": f"{row['growth_s']:.4f}",
                    "speedup": f"{row['speedup']:.2f}x",
                }
                for row in rows
            ],
            title="TraceBuilder: growth buffer vs legacy list-append",
        )
    )
    save_json("trace_builder", rows)
    by_name = {row["producer"]: row for row in rows}
    # The improvement claim: per-event emission no longer pays a
    # fragment allocation + final concatenate per access group.
    assert by_name["per-vertex"]["speedup"] >= 1.5
    # The batch path was already one-fragment-per-burst; the growth
    # buffer must not regress it (gate loose for CI variance).
    assert by_name["batched"]["speedup"] >= 0.7
