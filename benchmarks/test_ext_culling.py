"""Extension: Mesquite-style culling compounds with RDR's layout.

With patch culling enabled, converged regions drop out of later
iterations. Under a quality-aligned layout (RDR) the surviving active
set is storage-clustered, so the culled run's accesses stay streaming;
under ORI the active set scatters across the array. This is the
active-set mechanism DESIGN.md discusses, made measurable.
"""

import numpy as np
from conftest import run_once

from repro.bench import format_table, save_json, suite_meshes
from repro.core.pipeline import default_machine_for
from repro.memsim import MemoryLayout, modeled_time, simulate_trace
from repro.ordering import apply_ordering
from repro.quality import patch_quality, vertex_quality
from repro.smoothing import LaplacianSmoother


def test_ext_culling(benchmark, cfg):
    def driver():
        mesh = suite_meshes(cfg)["M6"]
        machine = default_machine_for(mesh, profile="serial")
        raw_q = vertex_quality(mesh)
        rank = patch_quality(mesh, passes=cfg.rank_passes, base=raw_q)
        rows = []
        for ordering in ("ori", "bfs", "rdr"):
            permuted, order = apply_ordering(mesh, ordering, qualities=rank)
            smoother = LaplacianSmoother(
                culling=True,
                max_iterations=20,
                tol=-np.inf,
                record_trace=True,
            )
            result = smoother.smooth(permuted)
            layout = MemoryLayout.for_mesh(permuted, line_size=machine.line_size)
            stats = simulate_trace(layout.lines(result.trace), machine)
            cost = modeled_time(stats, machine)
            rows.append(
                {
                    "ordering": ordering,
                    "total_smooths": int(sum(result.active_counts)),
                    "final_active": result.active_counts[-1],
                    "modeled_ms": cost.seconds(machine) * 1e3,
                    "L1_misses": stats.l1.misses,
                    "final_quality": result.final_quality,
                }
            )
        return rows

    rows = run_once(benchmark, driver)
    print()
    print(format_table(rows, title="Extension - culled smoothing (M6, 20 iterations)"))
    save_json("ext_culling", rows)

    by = {r["ordering"]: r for r in rows}
    # Culling shrinks the work for every ordering...
    for r in rows:
        assert r["final_active"] < 0.6 * suite_meshes(cfg)["M6"].interior_vertices().size
    # ...and RDR still wins the culled run.
    assert by["rdr"]["modeled_ms"] < by["ori"]["modeled_ms"]
    # Quality outcomes are equivalent (culling is an optimisation, not
    # an approximation, at this tolerance).
    assert abs(by["rdr"]["final_quality"] - by["ori"]["final_quality"]) < 0.01
