"""Extension: do the orderings transfer to other mesh kernels? (§6)

The paper conjectures RDR helps other mesh applications. Two probes:

* **SpMV** (graph-Laplacian y = Lx): a storage-order kernel — the
  bandwidth regime, where BFS/RCM classically shine. Every structured
  ordering must beat random; RDR is expected to be competitive but NOT
  necessarily the winner (its win is traversal alignment, and SpMV's
  traversal is the storage order itself).
* **Untangling** (worst-first local optimization): a quality-driven
  traversal like the smoother's — RDR's regime.
"""

import numpy as np
from conftest import run_once

from repro.apps import laplacian_spmv, untangle
from repro.bench import format_table, save_json, suite_meshes
from repro.core.pipeline import default_machine_for
from repro.memsim import MemoryLayout, modeled_time, simulate_trace
from repro.meshgen import perturb_interior, structured_rectangle
from repro.ordering import apply_ordering
from repro.quality import patch_quality, vertex_quality

ORDERINGS = ("random", "ori", "bfs", "rcm", "rdr")


def test_ext_spmv(benchmark, cfg):
    def driver():
        mesh = suite_meshes(cfg)["M6"]
        machine = default_machine_for(mesh, profile="serial")
        rank = patch_quality(mesh, passes=cfg.rank_passes, base=vertex_quality(mesh))
        x = np.random.default_rng(0).random(mesh.num_vertices)
        rows = []
        for ordering in ORDERINGS:
            permuted, order = apply_ordering(mesh, ordering, qualities=rank)
            out = laplacian_spmv(permuted, x[order], iterations=2, record_trace=True)
            layout = MemoryLayout.for_mesh(permuted, line_size=machine.line_size)
            stats = simulate_trace(layout.lines(out.trace), machine)
            cost = modeled_time(stats, machine)
            rows.append(
                {
                    "ordering": ordering,
                    "modeled_ms": cost.seconds(machine) * 1e3,
                    "L1_misses": stats.l1.misses,
                    "L2_misses": stats.l2.misses,
                }
            )
        return rows

    rows = run_once(benchmark, driver)
    print()
    print(format_table(rows, title="Extension - Laplacian SpMV under orderings (M6)"))
    save_json("ext_spmv", rows)

    by = {r["ordering"]: r for r in rows}
    # Every structured ordering beats random on this kernel.
    for name in ("ori", "bfs", "rcm", "rdr"):
        assert by[name]["modeled_ms"] < by["random"]["modeled_ms"], name
    # Bandwidth orderings are at least competitive with RDR here (SpMV
    # rows stream in storage order — not RDR's regime).
    assert by["bfs"]["modeled_ms"] < 1.2 * by["rdr"]["modeled_ms"]


def test_ext_untangle(benchmark, cfg):
    def driver():
        base = perturb_interior(structured_rectangle(40, 40), amplitude=0.016, seed=3)
        machine = default_machine_for(base, profile="serial")
        rank = patch_quality(base, passes=cfg.rank_passes, base=vertex_quality(base))
        rows = []
        for ordering in ("random", "ori", "rdr"):
            permuted, order = apply_ordering(base, ordering, qualities=rank)
            out = untangle(permuted, record_trace=True)
            layout = MemoryLayout.for_mesh(permuted, line_size=machine.line_size)
            stats = simulate_trace(layout.lines(out.trace), machine)
            cost = modeled_time(stats, machine)
            rows.append(
                {
                    "ordering": ordering,
                    "untangled": out.untangled,
                    "sweeps": out.sweeps,
                    "modeled_us": cost.seconds(machine) * 1e6,
                    "L1_misses": stats.l1.misses,
                }
            )
        return rows

    rows = run_once(benchmark, driver)
    print()
    print(format_table(rows, title="Extension - untangling under orderings"))
    save_json("ext_untangle", rows)

    by = {r["ordering"]: r for r in rows}
    # The numeric outcome is ordering-independent up to Gauss-Seidel
    # tie-breaking (in-place sweeps see slightly different intermediate
    # states under different storage orders)...
    assert all(r["untangled"] for r in rows)
    sweeps = [r["sweeps"] for r in rows]
    assert max(sweeps) - min(sweeps) <= 1
    # ...while the memory behaviour is not: random pays the most.
    assert by["rdr"]["L1_misses"] <= by["random"]["L1_misses"]
    assert by["ori"]["L1_misses"] <= by["random"]["L1_misses"]
