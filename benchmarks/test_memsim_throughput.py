"""Batched cache-simulation throughput vs the per-event reference.

Acceptance benchmark for the batched memsim engine: on a 1M-event
single-core LRU stream against the full-size Westmere-EX hierarchy,
``sim_engine="batched"`` must beat the reference replay by >=10x while
reproducing its per-level access/hit counts exactly (exactness is
asserted on every row; the differential/property suite in
``tests/memsim/test_batched.py`` pins it independently).

The row set spans the regimes the engine sees in practice:

* ``shuffled-cold`` — 1M distinct lines in random order: the gate row.
  All-cold streams take the engine's O(1) per-eviction fast path.
* ``sequential-cold`` — the same footprint as a pure stride; same fast
  path, cheaper reference (list ops stay O(1) at the MRU end).
* ``sparse-cold`` — 1M draws from an 8M-line space (mostly cold).
* ``uniform-warm`` — 1M draws from 500k lines: real reuse, the full
  three-filter solve plus eviction-divergence analysis.
* ``mesh`` — an actual smoothing trace (randomized ordering), the
  distribution the pipelines feed the simulator.

Scaled-*down* machines (calibrated caches a few hundred lines wide)
shift work into the exact replay of divergence windows and can run
*slower* than the reference; the pipelines default to the reference
engine, and the batched engine targets full-scale sweeps (see
DESIGN.md §10). Those regimes are therefore not gated here.
"""

import time

import numpy as np
from conftest import run_once

from repro.bench import format_table, save_json
from repro import RunConfig
from repro.core.pipeline import run_ordering
from repro.memsim import simulate_trace, westmere_ex
from repro.meshgen import perturb_interior, structured_rectangle


def _time_both(name: str, lines: np.ndarray) -> dict:
    machine = westmere_ex()
    lines = np.asarray(lines, dtype=np.int64)
    t0 = time.perf_counter()
    ref = simulate_trace(lines, machine)
    ref_s = time.perf_counter() - t0
    batched_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        got = simulate_trace(
            lines, machine, config=RunConfig(sim_engine="batched")
        )
        batched_s = min(batched_s, time.perf_counter() - t0)
    for a, b in zip(ref.levels(), got.levels()):
        assert (a.accesses, a.hits) == (b.accesses, b.hits), a.name
    return {
        "stream": name,
        "events": int(lines.size),
        "distinct_lines": int(np.unique(lines).size),
        "reference_s": ref_s,
        "batched_s": batched_s,
        "speedup": ref_s / batched_s,
    }


def _mesh_lines() -> np.ndarray:
    mesh = perturb_interior(
        structured_rectangle(96, 96, name="throughput-mesh"),
        amplitude=0.2 / 96,
        seed=0,
    )
    run = run_ordering(
        mesh,
        "random",
        config=RunConfig(seed=1),
        fixed_iterations=4,
        traversal="storage",
    )
    return run.lines


def _throughput_rows() -> list[dict]:
    rng = np.random.default_rng(42)
    return [
        _time_both("shuffled-cold", rng.permutation(1_000_000)),
        _time_both("sequential-cold", np.arange(1_000_000)),
        _time_both("sparse-cold", rng.integers(0, 8_000_000, size=1_000_000)),
        _time_both("uniform-warm", rng.integers(0, 500_000, size=1_000_000)),
        _time_both("mesh", _mesh_lines()),
    ]


def test_memsim_throughput(benchmark):
    rows = run_once(benchmark, _throughput_rows)
    print()
    print(
        format_table(
            rows, title="Batched vs reference cache simulation (Westmere-EX)"
        )
    )
    save_json("memsim_throughput", rows)
    by_name = {row["stream"]: row for row in rows}
    # The acceptance bar: >=10x on the 1M-event single-core LRU stream.
    assert by_name["shuffled-cold"]["speedup"] >= 10.0
    # Secondary regimes are gated loosely — they guard against the
    # batched path regressing to reference-like throughput, not for a
    # specific ratio (CI machines vary).
    assert by_name["sequential-cold"]["speedup"] >= 3.0
    assert by_name["sparse-cold"]["speedup"] >= 2.0
    assert by_name["uniform-warm"]["speedup"] >= 1.5
    assert by_name["mesh"]["speedup"] >= 0.8
