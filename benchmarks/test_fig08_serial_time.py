"""Figure 8: serial execution time of ORI / BFS / RDR on all nine meshes.

Paper: RDR is on average 1.39x faster than ORI and 1.19x faster than
BFS. The reproduction asserts RDR wins on every mesh against ORI, and
on average against BFS (fidelity notes in EXPERIMENTS.md discuss the
smaller magnitudes at benchmark scale).
"""

import numpy as np
from conftest import run_once

from repro.bench import fig8_rows, format_table, save_json


def test_fig8_serial_execution_time(benchmark, cfg):
    rows = run_once(benchmark, fig8_rows, cfg)
    print()
    print(format_table(rows, title="Figure 8 - modeled serial time (ms, 1st iteration)"))
    save_json("fig8", rows)

    assert len(rows) == 9
    vs_ori = [r["speedup_rdr_vs_ori"] for r in rows]
    vs_bfs = [r["speedup_rdr_vs_bfs"] for r in rows]
    # RDR beats ORI on every mesh, comfortably on average.
    assert min(vs_ori) > 1.05
    assert float(np.mean(vs_ori)) > 1.15
    # RDR beats BFS on average and never loses badly on one mesh.
    assert float(np.mean(vs_bfs)) > 1.03
    assert min(vs_bfs) > 0.97
