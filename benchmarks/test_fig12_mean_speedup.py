"""Figure 12: mean speedup (over the nine meshes) vs core count.

Paper: the mean RDR speedup reaches ~75 at 32 cores, dominating BFS and
ORI across the sweep. The reproduction asserts RDR's mean curve
dominates ORI's everywhere, stays competitive with BFS, and reaches a
large top-end value.
"""

from conftest import run_once

from repro.bench import fig12_rows, format_table, render_series, save_json


def test_fig12_mean_speedup(benchmark, cfg):
    rows = run_once(benchmark, fig12_rows, cfg)
    print()
    print(format_table(rows, title="Figure 12 - mean speedup vs 1-core ORI"))
    print(render_series([r["cores"] for r in rows], [r["rdr"] for r in rows],
                        title="mean RDR speedup vs cores"))
    save_json("fig12", rows)

    by_p = {r["cores"]: r for r in rows}
    for p in cfg.cores:
        assert by_p[p]["rdr"] > by_p[p]["ori"]
    # Super-linear regime at low-to-mid core counts.
    assert by_p[4]["rdr"] > 4
    assert by_p[8]["rdr"] > 8
    # Headline top-end magnitude (paper: ~75 at 32 cores).
    assert by_p[max(cfg.cores)]["rdr"] > 40
    # RDR never falls far behind BFS on the mean curve.
    for p in cfg.cores:
        assert by_p[p]["rdr"] > 0.85 * by_p[p]["bfs"]
