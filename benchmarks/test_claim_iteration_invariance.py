"""The paper's bolded claim: "the orderings did not change the number of
iterations needed to reach this criterion" (Section 5.1).

Run each ordering to convergence under the paper's 5e-6 criterion and
check the iteration counts agree. Gauss-Seidel smoothing is
order-sensitive in its intermediate states, so exact equality is not
guaranteed in general; the claim holds up to +-1 iteration, and the
final qualities coincide tightly.
"""

from conftest import run_once

from repro.bench import format_table, save_json, suite_meshes
from repro.ordering import apply_ordering
from repro.quality import patch_quality, vertex_quality
from repro.smoothing import laplacian_smooth


def test_claim_orderings_do_not_change_iterations(benchmark, cfg):
    def driver():
        rows = []
        for label in ("M1", "M6", "M8"):
            mesh = suite_meshes(cfg)[label]
            rank = patch_quality(mesh, passes=cfg.rank_passes, base=vertex_quality(mesh))
            for ordering in ("ori", "bfs", "rdr"):
                permuted, _ = apply_ordering(mesh, ordering, qualities=rank)
                result = laplacian_smooth(permuted, max_iterations=200)
                rows.append(
                    {
                        "mesh": label,
                        "ordering": ordering,
                        "iterations": result.iterations,
                        "converged": result.converged,
                        "final_quality": result.final_quality,
                    }
                )
        return rows

    rows = run_once(benchmark, driver)
    print()
    print(format_table(rows, title="Claim check - iteration counts per ordering"))
    save_json("claim_iterations", rows)

    for label in ("M1", "M6", "M8"):
        sub = [r for r in rows if r["mesh"] == label]
        assert all(r["converged"] for r in sub)
        iters = [r["iterations"] for r in sub]
        assert max(iters) - min(iters) <= 1, (label, iters)
        quals = [r["final_quality"] for r in sub]
        assert max(quals) - min(quals) < 1e-3, (label, quals)
