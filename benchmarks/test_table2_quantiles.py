"""Table 2: reuse-distance quantiles per mesh and ordering.

Paper (first iteration, per mesh): ORI has median 7-8 and a heavy tail
(90% quantile in the hundreds-to-thousands); BFS has median 1 with 90%
quantile ~70-100; RDR has median 1 with 90% quantile <= 11 and a maximum
orders of magnitude below the footprint. The reproduction asserts the
quantile ordering at every level and the RDR q90 collapse.
"""

import numpy as np
from conftest import run_once

from repro.bench import format_table, save_json, table2_rows


def test_table2_reuse_quantiles(benchmark, cfg):
    rows = run_once(benchmark, table2_rows, cfg)
    print()
    print(format_table(rows, title="Table 2 - reuse-distance quantiles (lines, 1st iteration)"))
    save_json("table2", rows)

    by = {(r["mesh"], r["ordering"]): r for r in rows}
    meshes = sorted({r["mesh"] for r in rows})
    for m in meshes:
        ori, bfs, rdr = by[(m, "ori")], by[(m, "bfs")], by[(m, "rdr")]
        # Medians: ORI noticeably above BFS/RDR (paper: 8 vs 1 vs 1).
        assert ori["50%"] >= bfs["50%"] >= rdr["50%"]
        assert rdr["50%"] <= 2
        # RDR's q90 collapses relative to ORI (paper: 6 vs 1168).
        assert rdr["90%"] < 0.25 * ori["90%"]
    # And beats BFS's q90 on average (paper: 6 vs 99).
    mean_rdr = np.mean([by[(m, "rdr")]["90%"] for m in meshes])
    mean_bfs = np.mean([by[(m, "bfs")]["90%"] for m in meshes])
    print(f"mean q90: rdr={mean_rdr:.0f} bfs={mean_bfs:.0f}")
    assert mean_rdr < mean_bfs
