"""Ablation: compact vs scatter thread affinity in the multicore model.

The paper hypothesises its super-linear low-core speedups come from
threads being "distributed in a scattered way, leading to four times
the L3 caches from one to four cores". The model makes the hypothesis
testable: with scatter affinity, 4 threads see 4 sockets' L3; with
compact affinity they share one. The ablation confirms the mechanism.
"""

from conftest import run_once

from repro.bench import suite_meshes
from repro.bench.report import format_table, save_json
from repro.core.pipeline import default_machine_for, run_parallel_ordering


def test_ablation_affinity(benchmark, cfg):
    def driver():
        mesh = suite_meshes(cfg, scale=cfg.scaling_scale)["M1"]
        machine = default_machine_for(mesh, profile="scaling")
        rows = []
        for affinity in ("compact", "scatter"):
            for p in (1, 4, 8):
                pr = run_parallel_ordering(
                    mesh, "ori", p, machine=machine,
                    iterations=cfg.scaling_iterations, affinity=affinity,
                )
                rows.append(
                    {
                        "affinity": affinity,
                        "cores": p,
                        "modeled_ms": pr.modeled_seconds * 1e3,
                        "memory_accesses": pr.result.access_counts()["memory"],
                    }
                )
        return rows

    rows = run_once(benchmark, driver)
    print()
    print(format_table(rows, title="Ablation - thread affinity (ORI, M1)"))
    save_json("ablation_affinity", rows)

    cell = {(r["affinity"], r["cores"]): r for r in rows}
    # At 4 threads, scatter sees 4x the L3 and goes off-chip far less.
    assert (
        cell[("scatter", 4)]["memory_accesses"]
        < cell[("compact", 4)]["memory_accesses"]
    )
    assert cell[("scatter", 4)]["modeled_ms"] < cell[("compact", 4)]["modeled_ms"]
    # At 1 thread the two policies are identical by construction.
    assert cell[("scatter", 1)]["modeled_ms"] == cell[("compact", 1)]["modeled_ms"]
