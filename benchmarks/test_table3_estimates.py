"""Table 3: estimated capacity misses and max elements fitting each cache.

Paper: after subtracting compulsory misses, RDR shows essentially zero
L3 capacity misses, and the reuse-distance-implied "max number of
elements that fit" is orders of magnitude smaller for RDR than for
ORI/BFS (its working window is tiny). The reproduction asserts the
capacity-miss ordering and the window collapse.
"""

import numpy as np
from conftest import run_once

from repro.bench import format_table, save_json, table3_rows


def test_table3_estimated_misses(benchmark, cfg):
    rows = run_once(benchmark, table3_rows, cfg)
    print()
    print(format_table(rows, title="Table 3 - capacity misses + implied cache windows (lines)"))
    save_json("table3", rows)

    by = {(r["mesh"], r["ordering"]): r for r in rows}
    meshes = sorted({r["mesh"] for r in rows})
    rdr_l2 = [by[(m, "rdr")]["L2_cap_misses"] for m in meshes]
    ori_l2 = [by[(m, "ori")]["L2_cap_misses"] for m in meshes]
    bfs_l2 = [by[(m, "bfs")]["L2_cap_misses"] for m in meshes]
    # Capacity L2 misses: RDR < BFS < ORI on average.
    assert np.mean(rdr_l2) < np.mean(bfs_l2) < np.mean(ori_l2)
    # RDR's L3 capacity misses sit at (near) zero - the paper's
    # "quasi-optimal" claim.
    rdr_l3 = [by[(m, "rdr")]["L3_cap_misses"] for m in meshes]
    assert np.mean(rdr_l3) <= 0.02 * np.mean(
        [by[(m, "rdr")]["L1_cap_misses"] for m in meshes]
    ) + 50
    # Implied L2 window: RDR's is far below ORI's (its reuse fits a
    # tiny working set).
    for m in meshes:
        assert by[(m, "rdr")]["est_lines_L2"] < by[(m, "ori")]["est_lines_L2"]
