"""Ablation: element-granularity vs cache-line-granularity reuse distance.

DESIGN.md's modelling note: for a FIXED traversal, reuse distance over
*element identities* is invariant under renaming, so orderings can only
act through the memory layout (which elements share a line). This
ablation verifies the claim empirically by pushing one and the same
logical traversal through the ORI and RDR layouts: the
element-granularity quantiles coincide exactly, while the
line-granularity ones differ sharply — validating that the library
measures the mechanism the paper describes (spatial locality via the
span of accesses, Figure 5).
"""

from conftest import run_once

from repro.bench import format_table, save_json, suite_meshes
from repro.memsim import MemoryLayout, profile_from_distances, reuse_distances
from repro.ordering import apply_ordering, invert_permutation
from repro.quality import patch_quality, vertex_quality
from repro.smoothing import greedy_traversal, trace_for_traversal


def test_ablation_granularity(benchmark, cfg):
    def driver():
        mesh = suite_meshes(cfg)["M6"]
        rank_q = patch_quality(mesh, passes=cfg.rank_passes, base=vertex_quality(mesh))
        # One logical traversal, fixed on the base mesh.
        logical_seq = greedy_traversal(mesh, rank_q)
        rows = []
        for ordering in ("ori", "rdr"):
            permuted, order = apply_ordering(mesh, ordering, qualities=rank_q)
            inv = invert_permutation(order)
            seq = inv[logical_seq]  # same vertices, new storage names
            trace = trace_for_traversal(permuted, seq)
            # Restrict to the coordinate array: its logical elements map
            # 1:1 across layouts. (CSR row-pointer reads touch xadj[v+1],
            # whose logical identity depends on who is stored next, so
            # the full trace is only approximately invariant.)
            trace = trace.filtered("coords")
            layout = MemoryLayout.for_mesh(permuted)
            for granularity, ids in (
                ("element", layout.element_ids(trace)),
                ("line", layout.lines(trace)),
            ):
                prof = profile_from_distances(reuse_distances(ids))
                rows.append(
                    {
                        "ordering": ordering,
                        "granularity": granularity,
                        "q50": prof.q50,
                        "q75": prof.q75,
                        "q90": prof.q90,
                        "mean": prof.mean,
                    }
                )
        return rows

    rows = run_once(benchmark, driver)
    print()
    print(format_table(rows, title="Ablation - reuse-distance granularity (fixed traversal)"))
    save_json("ablation_granularity", rows)

    cell = {(r["ordering"], r["granularity"]): r for r in rows}
    # Element granularity is invariant up to the within-neighborhood
    # read order (the CSR adjacency is kept sorted per layout, so the
    # same set of reads interleaves slightly differently): quantiles
    # agree to within a couple of positions, means within a few percent.
    ori_e = cell[("ori", "element")]
    rdr_e = cell[("rdr", "element")]
    for k in ("q50", "q75", "q90"):
        assert abs(ori_e[k] - rdr_e[k]) <= max(2, 0.05 * ori_e[k]), k
    assert abs(ori_e["mean"] - rdr_e["mean"]) <= 0.05 * ori_e["mean"]
    # Line granularity exposes the orderings (the paper's mechanism):
    # the same traversal, pushed through the RDR layout, collapses the
    # tail by far more than the element-level wiggle.
    assert cell[("rdr", "line")]["q90"] < 0.5 * cell[("ori", "line")]["q90"]
