"""Ablation: the extended ordering zoo beyond the paper's three.

Adds reverse-BFS (Munson & Hovland), RCM, Hilbert/Morton space-filling
curves (Sastry et al.), plain quality sort (RDR without the neighborhood
walk), degree sort, and the first-touch oracle. Checks that

* the oracle is the best ordering (alignment upper bound),
* RDR beats the plain quality sort — i.e. Algorithm 2's neighborhood
  appending, not just the worst-first idea, carries the win,
* every structured ordering beats random.
"""

from conftest import run_once

from repro.bench import format_table, save_json, serial_run

ORDERINGS = (
    "random",
    "ori",
    "bfs",
    "rbfs",
    "dfs",
    "rcm",
    "hilbert",
    "morton",
    "sloan",
    "spectral",
    "degree",
    "qsort",
    "rdr",
    "oracle",
)


def test_ablation_ordering_zoo(benchmark, cfg):
    def driver():
        rows = []
        for ordering in ORDERINGS:
            run = serial_run("M6", ordering, cfg)
            prof = run.reuse_profile()
            rows.append(
                {
                    "ordering": ordering,
                    "modeled_ms": run.modeled_seconds * 1e3,
                    "L1_misses": run.cache.l1.misses,
                    "L2_misses": run.cache.l2.misses,
                    "q50": prof.q50,
                    "q90": prof.q90,
                }
            )
        return rows

    rows = run_once(benchmark, driver)
    rows_sorted = sorted(rows, key=lambda r: r["modeled_ms"])
    print()
    print(format_table(rows_sorted, title="Ablation - ordering zoo (ocean, 1st iteration)"))
    save_json("ablation_baselines", rows)

    by = {r["ordering"]: r for r in rows}
    # The oracle bounds everything.
    best = min(r["modeled_ms"] for r in rows)
    assert by["oracle"]["modeled_ms"] <= 1.02 * best
    # Neighborhood appending is essential: plain quality sort scatters
    # neighbors and loses badly to RDR.
    assert by["rdr"]["modeled_ms"] < by["qsort"]["modeled_ms"]
    assert by["rdr"]["q90"] < by["qsort"]["q90"]
    # Degree sort is quality-blind and also loses to RDR.
    assert by["rdr"]["modeled_ms"] < by["degree"]["modeled_ms"]
    # Everything structured beats random.
    for name in ("ori", "bfs", "rbfs", "rcm", "hilbert", "morton", "sloan", "spectral", "rdr"):
        assert by[name]["modeled_ms"] < by["random"]["modeled_ms"], name
