"""Ablation: replacement policy (LRU vs FIFO vs random).

The paper's Section 3.1 model assumes LRU. This ablation re-simulates
the serial experiment under FIFO and random replacement and checks the
*ordering ranking* — the paper's actual claim — survives the policy
change, even though absolute miss counts shift.
"""

from conftest import run_once

from repro.bench import format_table, save_json, serial_run
from repro.memsim import simulate_trace


def test_ablation_replacement_policy(benchmark, cfg):
    def driver():
        rows = []
        for ordering in ("random", "ori", "bfs", "rdr"):
            run = serial_run("M6", ordering, cfg)
            for policy in ("lru", "fifo", "random"):
                stats = simulate_trace(run.lines, run.machine, policy=policy)
                rows.append(
                    {
                        "ordering": ordering,
                        "policy": policy,
                        "L1_misses": stats.l1.misses,
                        "L2_misses": stats.l2.misses,
                    }
                )
        return rows

    rows = run_once(benchmark, driver)
    print()
    print(format_table(rows, title="Ablation - replacement policy x ordering (M6)"))
    save_json("ablation_replacement", rows)

    cell = {(r["ordering"], r["policy"]): r for r in rows}
    for policy in ("lru", "fifo", "random"):
        # The headline ranking holds under every policy.
        assert (
            cell[("rdr", policy)]["L1_misses"]
            < cell[("ori", policy)]["L1_misses"]
            < cell[("random", policy)]["L1_misses"]
        ), policy
    # And the policies do differ in absolute terms (the ablation is not
    # vacuous): LRU beats FIFO for at least one ordering.
    assert any(
        cell[(o, "lru")]["L1_misses"] < cell[(o, "fifo")]["L1_misses"]
        for o in ("random", "ori", "bfs", "rdr")
    )
